// Gate-level netlist with named signals, primary inputs/outputs, and the
// structural analyses the rest of xatpg builds on.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/gate.hpp"

namespace xatpg {

/// A feedback arc: fanin position `pin` of gate `gate` closes a cycle.
struct FeedbackArc {
  SignalId gate = kNoSignal;
  std::size_t pin = 0;

  bool operator==(const FeedbackArc&) const = default;
};

/// Gate-level circuit.  Signal ids are gate indices: signal i is the output
/// of gates()[i]; primary inputs are Input-type gates (identity buffers per
/// the paper's circuit model).
class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // --- construction --------------------------------------------------------

  /// Add a primary input; returns its signal id.
  SignalId add_input(const std::string& name);

  /// Add a gate; returns its output signal id.  Fanins may be forward
  /// references created with declare_signal().
  SignalId add_gate(GateType type, const std::string& name,
                    const std::vector<SignalId>& fanins);

  /// Add a two-level SOP complex gate.
  SignalId add_sop(const std::string& name,
                   const std::vector<SignalId>& fanins, Cover cover);

  /// Add a generalized C-element with set/reset covers over the fanins.
  SignalId add_gc(const std::string& name, const std::vector<SignalId>& fanins,
                  Cover set_cover, Cover reset_cover);

  /// Reserve a named signal id before its driver is defined (two-pass
  /// parsing, feedback loops).  define_* on the same name fills it in.
  SignalId declare_signal(const std::string& name);

  /// Mark a signal as primary output.
  void set_output(SignalId s);
  void set_output(const std::string& name);

  /// Re-point fanin `pin` of `gate` to `new_source` (used by fault
  /// materialization; covers keep their arity).
  void redirect_pin(SignalId gate, std::size_t pin, SignalId new_source);

  /// Check structural invariants (all signals driven, fanins in range,
  /// covers match fanin arity).  Throws CheckError on violation.
  void check_invariants() const;

  // --- access ---------------------------------------------------------------

  std::size_t num_signals() const { return gates_.size(); }
  const Gate& gate(SignalId s) const { return gates_[s]; }
  const std::vector<Gate>& gates() const { return gates_; }
  const std::vector<SignalId>& inputs() const { return inputs_; }
  const std::vector<SignalId>& outputs() const { return outputs_; }
  bool is_input(SignalId s) const { return gates_[s].type == GateType::Input; }
  bool is_output(SignalId s) const;

  const std::string& signal_name(SignalId s) const { return gates_[s].name; }
  std::optional<SignalId> find_signal(const std::string& name) const;
  /// find_signal that throws when absent.
  SignalId signal(const std::string& name) const;

  /// Total number of gate input pins (the input stuck-at fault sites).
  std::size_t num_pins() const;

  // --- structural analysis ---------------------------------------------------

  /// fanouts()[s] = list of (gate, pin) pairs reading signal s.
  std::vector<std::vector<FeedbackArc>> fanouts() const;

  /// Strongly connected components of the signal graph (Tarjan).  Returns
  /// component id per signal; ids are in reverse topological order.
  std::vector<std::uint32_t> scc_ids(std::uint32_t* num_sccs = nullptr) const;

  /// A set of fanin pins whose removal makes the circuit acyclic (one back
  /// arc per DFS cycle inside each SCC).  Used by the virtual-FF baseline.
  std::vector<FeedbackArc> feedback_arcs() const;

  /// Topological order of signals ignoring the given cut arcs; inputs first.
  /// Throws if cycles remain.
  std::vector<SignalId> topo_order(const std::vector<FeedbackArc>& cuts) const;

  /// Evaluate the target value of gate s under a complete boolean state.
  bool eval_gate_bool(SignalId s, const std::vector<bool>& state) const;

  /// True if gate s is stable (output equals target) in `state`.
  bool is_gate_stable(SignalId s, const std::vector<bool>& state) const;

  /// True if every gate is stable in `state`.
  bool is_stable_state(const std::vector<bool>& state) const;

 private:
  SignalId intern(const std::string& name);

  std::string name_;
  std::vector<Gate> gates_;
  std::vector<SignalId> inputs_;
  std::vector<SignalId> outputs_;
  std::unordered_map<std::string, SignalId> by_name_;
  std::vector<bool> defined_;  // declared vs. defined
};

// --- text formats ------------------------------------------------------------

/// Parse the native .xnl format.  Throws CheckError with a line diagnostic
/// on malformed input.  Format:
///   .model NAME
///   .inputs A B ...
///   .outputs X Y ...
///   .gate TYPE out in1 in2 ...
///   .sop out : in1 in2 : 11- 0-1
///   .gc out : in1 in2 : 1-,01 : -0
///   .end
Netlist parse_xnl(std::istream& in);
Netlist parse_xnl_string(const std::string& text);

/// Write the native format (round-trips through parse_xnl).
void write_xnl(const Netlist& netlist, std::ostream& out);
std::string write_xnl_string(const Netlist& netlist);

/// Parse an ISCAS-style .bench file (INPUT/OUTPUT/= AND(...) lines).
/// DFF is rejected: this library models asynchronous (clockless) logic.
Netlist parse_bench(std::istream& in);
Netlist parse_bench_string(const std::string& text);

}  // namespace xatpg
