#include "netlist/random_netlist.hpp"

#include <string>

#include "sim/ternary.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace xatpg {

Netlist random_netlist(std::uint64_t seed, const RandomNetlistOptions& options,
                       std::vector<bool>* reset) {
  Rng rng(seed);
  Netlist netlist;
  netlist.set_name("random" + std::to_string(seed));
  std::vector<SignalId> pool;
  for (std::size_t i = 0; i < options.num_inputs; ++i)
    pool.push_back(netlist.add_input("in" + std::to_string(i)));
  static constexpr GateType kCombinational[] = {
      GateType::And, GateType::Or,  GateType::Nand,
      GateType::Nor, GateType::Xor, GateType::Not};
  for (std::size_t g = 0; g < options.num_gates; ++g) {
    const std::string name = "g" + std::to_string(g);
    const bool state_holding = options.allow_state_holding && rng.below(4) == 0;
    const GateType type = state_holding
                              ? GateType::Celem
                              : kCombinational[rng.below(6)];
    std::size_t arity = (type == GateType::Not) ? 1 : 2 + rng.below(2);
    if (type == GateType::Celem) arity = 2;
    std::vector<SignalId> fanins;
    for (std::size_t i = 0; i < arity; ++i)
      fanins.push_back(pool[rng.below(pool.size())]);
    pool.push_back(netlist.add_gate(type, name, fanins));
  }
  netlist.set_output(pool.back());
  netlist.check_invariants();
  std::vector<bool> settled(netlist.num_signals(), false);
  XATPG_CHECK(settle_to_stable(netlist, settled));
  if (reset != nullptr) *reset = std::move(settled);
  return netlist;
}

}  // namespace xatpg
