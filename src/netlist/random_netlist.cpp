#include "netlist/random_netlist.hpp"

#include <algorithm>
#include <iterator>
#include <string>
#include <utility>

#include "sim/ternary.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace xatpg {

Netlist random_netlist(std::uint64_t seed, const RandomNetlistOptions& options,
                       std::vector<bool>* reset) {
  Rng rng(seed);
  Netlist netlist;
  netlist.set_name("random" + std::to_string(seed));
  std::vector<SignalId> pool;
  for (std::size_t i = 0; i < options.num_inputs; ++i)
    pool.push_back(netlist.add_input("in" + std::to_string(i)));
  static constexpr GateType kCombinational[] = {
      GateType::And, GateType::Or,  GateType::Nand,
      GateType::Nor, GateType::Xor, GateType::Not};
  for (std::size_t g = 0; g < options.num_gates; ++g) {
    const std::string name = "g" + std::to_string(g);
    const bool state_holding = options.allow_state_holding && rng.below(4) == 0;
    const GateType type = state_holding
                              ? GateType::Celem
                              : kCombinational[rng.below(6)];
    std::size_t arity = (type == GateType::Not) ? 1 : 2 + rng.below(2);
    if (type == GateType::Celem) arity = 2;
    std::vector<SignalId> fanins;
    for (std::size_t i = 0; i < arity; ++i)
      fanins.push_back(pool[rng.below(pool.size())]);
    pool.push_back(netlist.add_gate(type, name, fanins));
  }
  netlist.set_output(pool.back());
  netlist.check_invariants();
  std::vector<bool> settled(netlist.num_signals(), false);
  XATPG_CHECK(settle_to_stable(netlist, settled));
  if (reset != nullptr) *reset = std::move(settled);
  return netlist;
}

// --- structure-aware mutation ------------------------------------------------

namespace {

/// Editable mirror of a Netlist.  Mutations edit this, then rebuild: the
/// Netlist construction API is append-only by design (ids are indices), so
/// "change gate 3's type" is expressed as "rebuild with gate 3 changed".
struct EditableCircuit {
  std::string name;
  std::vector<Gate> gates;  ///< index = signal id, same as in the Netlist
  std::vector<SignalId> outputs;

  static EditableCircuit from(const Netlist& netlist) {
    EditableCircuit c;
    c.name = netlist.name();
    c.gates = netlist.gates();
    c.outputs = netlist.outputs();
    return c;
  }

  /// Rebuild a Netlist.  Ids are preserved: gates are re-added in index
  /// order and fanins are passed as numeric ids, so interning assigns every
  /// gate its old index back.
  Netlist build() const {
    Netlist netlist(name);
    for (const Gate& g : gates) {
      switch (g.type) {
        case GateType::Input: netlist.add_input(g.name); break;
        case GateType::Sop: netlist.add_sop(g.name, g.fanins, g.cover); break;
        case GateType::Gc:
          netlist.add_gc(g.name, g.fanins, g.cover, g.reset_cover);
          break;
        default: netlist.add_gate(g.type, g.name, g.fanins); break;
      }
    }
    for (const SignalId out : outputs) netlist.set_output(out);
    netlist.check_invariants();
    return netlist;
  }

  /// Signal ids of the non-input gates (the mutable ones).
  std::vector<SignalId> editable_gates() const {
    std::vector<SignalId> ids;
    for (std::size_t s = 0; s < gates.size(); ++s)
      if (gates[s].type != GateType::Input)
        ids.push_back(static_cast<SignalId>(s));
    return ids;
  }

  /// A gate name not used by any existing signal ("m0", "m1", ...).
  std::string fresh_name() const {
    for (std::size_t i = 0;; ++i) {
      std::string candidate = "m" + std::to_string(i);
      const bool taken =
          std::any_of(gates.begin(), gates.end(),
                      [&](const Gate& g) { return g.name == candidate; });
      if (!taken) return candidate;
    }
  }
};

/// Gate types expressible at a given arity via add_gate (Sop/Gc covers are
/// excluded: swapping them means inventing covers, which is Splice's job).
std::vector<GateType> types_for_arity(std::size_t arity) {
  if (arity == 1) return {GateType::Buf, GateType::Not};
  std::vector<GateType> types{GateType::And,  GateType::Or,  GateType::Nand,
                              GateType::Nor,  GateType::Xor, GateType::Xnor,
                              GateType::Celem};
  if (arity == 3) types.push_back(GateType::Maj);
  return types;
}

/// Swap one gate's type for a different one of identical arity.
bool apply_gate_swap(EditableCircuit& circuit, Rng& rng) {
  std::vector<SignalId> candidates;
  for (const SignalId s : circuit.editable_gates()) {
    const GateType t = circuit.gates[s].type;
    if (t != GateType::Sop && t != GateType::Gc) candidates.push_back(s);
  }
  if (candidates.empty()) return false;
  const SignalId target = candidates[rng.below(candidates.size())];
  Gate& gate = circuit.gates[target];
  std::vector<GateType> types = types_for_arity(gate.fanins.size());
  types.erase(std::remove(types.begin(), types.end(), gate.type), types.end());
  if (types.empty()) return false;
  gate.type = types[rng.below(types.size())];
  return true;
}

/// Re-point one fanin pin at a different signal (feedback loops and
/// self-loops are legal outcomes — settling decides whether they stay).
bool apply_rewire(EditableCircuit& circuit, Rng& rng) {
  const std::vector<SignalId> candidates = circuit.editable_gates();
  if (candidates.empty() || circuit.gates.size() < 2) return false;
  const SignalId target = candidates[rng.below(candidates.size())];
  Gate& gate = circuit.gates[target];
  const std::size_t pin = rng.below(gate.fanins.size());
  const auto source = static_cast<SignalId>(rng.below(circuit.gates.size()));
  if (source == gate.fanins[pin]) return false;
  gate.fanins[pin] = source;
  return true;
}

/// Append a new gate over random existing signals, then either re-point a
/// random consumer pin at it (usually) or expose it as an extra output, so
/// the new logic always lands in an observed cone.
bool apply_splice(EditableCircuit& circuit, Rng& rng) {
  static constexpr GateType kSpliceTypes[] = {
      GateType::And, GateType::Or,    GateType::Nand, GateType::Nor,
      GateType::Xor, GateType::Not,   GateType::Buf,  GateType::Celem,
      GateType::Maj};
  const GateType type = kSpliceTypes[rng.below(std::size(kSpliceTypes))];
  std::size_t arity = 2;
  if (type == GateType::Not || type == GateType::Buf) arity = 1;
  if (type == GateType::Maj) arity = 3;

  Gate gate;
  gate.type = type;
  gate.name = circuit.fresh_name();
  for (std::size_t i = 0; i < arity; ++i)
    gate.fanins.push_back(static_cast<SignalId>(rng.below(circuit.gates.size())));
  const auto new_id = static_cast<SignalId>(circuit.gates.size());
  circuit.gates.push_back(std::move(gate));

  const std::vector<SignalId> consumers = circuit.editable_gates();
  // editable_gates() includes the gate just appended; exclude it so the
  // splice never just rewires itself into a dead self-loop.
  std::vector<SignalId> targets;
  for (const SignalId s : consumers)
    if (s != new_id) targets.push_back(s);
  if (!targets.empty() && rng.below(4) != 0) {
    Gate& consumer = circuit.gates[targets[rng.below(targets.size())]];
    consumer.fanins[rng.below(consumer.fanins.size())] = new_id;
  } else {
    circuit.outputs.push_back(new_id);
  }
  return true;
}

}  // namespace

const char* netlist_mutation_name(NetlistMutation m) {
  switch (m) {
    case NetlistMutation::GateSwap: return "gate-swap";
    case NetlistMutation::Rewire: return "rewire";
    case NetlistMutation::Splice: return "splice";
    case NetlistMutation::ResetPerturb: return "reset-perturb";
  }
  return "?";
}

std::optional<MutatedNetlist> mutate_netlist(const Netlist& base, Rng& rng,
                                             const MutateOptions& options) {
  for (std::size_t attempt = 0; attempt < options.max_attempts; ++attempt) {
    const auto kind = static_cast<NetlistMutation>(rng.below(4));

    if (kind == NetlistMutation::ResetPerturb) {
      // Structure unchanged; the mutation is the start state.  Settling from
      // a random corner reaches resets the all-false convention never sees.
      std::vector<bool> state(base.num_signals());
      for (std::size_t s = 0; s < state.size(); ++s) state[s] = rng.flip();
      if (!settle_to_stable(base, state)) continue;
      return MutatedNetlist{base, std::move(state), kind};
    }

    EditableCircuit circuit = EditableCircuit::from(base);
    bool edited = false;
    switch (kind) {
      case NetlistMutation::GateSwap: edited = apply_gate_swap(circuit, rng); break;
      case NetlistMutation::Rewire: edited = apply_rewire(circuit, rng); break;
      case NetlistMutation::Splice:
        edited = options.allow_growth && apply_splice(circuit, rng);
        break;
      case NetlistMutation::ResetPerturb: break;  // handled above
    }
    if (!edited) continue;

    Netlist mutant = circuit.build();
    std::vector<bool> reset(mutant.num_signals(), false);
    if (!settle_to_stable(mutant, reset)) continue;
    return MutatedNetlist{std::move(mutant), std::move(reset), kind};
  }
  return std::nullopt;
}

}  // namespace xatpg
