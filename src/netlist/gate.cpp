#include "netlist/gate.hpp"

#include <cctype>

namespace xatpg {

const char* gate_type_name(GateType type) {
  switch (type) {
    case GateType::Input: return "INPUT";
    case GateType::Buf: return "BUF";
    case GateType::Not: return "NOT";
    case GateType::And: return "AND";
    case GateType::Or: return "OR";
    case GateType::Nand: return "NAND";
    case GateType::Nor: return "NOR";
    case GateType::Xor: return "XOR";
    case GateType::Xnor: return "XNOR";
    case GateType::Maj: return "MAJ";
    case GateType::Celem: return "C";
    case GateType::Gc: return "GC";
    case GateType::Sop: return "SOP";
  }
  return "?";
}

GateType parse_gate_type(const std::string& token) {
  // Strip a trailing arity suffix ("AND2" -> "AND").
  std::string base;
  for (char c : token) {
    if (std::isdigit(static_cast<unsigned char>(c))) break;
    base += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  if (base == "INPUT") return GateType::Input;
  if (base == "BUF" || base == "BUFF") return GateType::Buf;
  if (base == "NOT" || base == "INV") return GateType::Not;
  if (base == "AND") return GateType::And;
  if (base == "OR") return GateType::Or;
  if (base == "NAND") return GateType::Nand;
  if (base == "NOR") return GateType::Nor;
  if (base == "XOR") return GateType::Xor;
  if (base == "XNOR") return GateType::Xnor;
  if (base == "MAJ") return GateType::Maj;
  if (base == "C" || base == "CELEM") return GateType::Celem;
  if (base == "GC") return GateType::Gc;
  if (base == "SOP") return GateType::Sop;
  XATPG_CHECK_MSG(false, "unknown gate type '" << token << "'");
  return GateType::Buf;
}

bool is_state_holding(GateType type) {
  return type == GateType::Celem || type == GateType::Gc;
}

}  // namespace xatpg
