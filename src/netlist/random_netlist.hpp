// Seeded random netlist generator and structure-aware netlist mutator.
//
// The generator is shared by the test fixtures (tests/fixtures.hpp locks the
// seed-7 shape as a golden value) and the perf-corpus harness (src/perf),
// which runs whole seeded families through the ATPG flow as a synthetic
// workload.  The mutator on top of it is the structural fuzzer's engine
// (tests/fuzz/fuzz_structural.cpp, docs/FUZZING.md): byte-level fuzzing of
// the parsers almost never produces a circuit that survives check_invariants,
// so to reach deep CSSG/engine states the fuzzer instead perturbs circuits
// that are *already valid* and re-validates after every edit.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/random.hpp"

namespace xatpg {

struct RandomNetlistOptions {
  std::size_t num_inputs = 3;
  /// Non-input gates to add on top of the inputs.
  std::size_t num_gates = 8;
  /// Allow state-holding C-elements in the mix (the circuit stays
  /// structurally feed-forward; state lives in the gates' own outputs, so a
  /// gate-by-gate relaxation always settles).
  bool allow_state_holding = true;
};

/// Deterministic random netlist: same seed, same circuit, on every platform
/// (the generator only draws from Rng).  The result passes check_invariants() and
/// settles from the all-false state; the final gate is the primary output.
/// When `reset` is non-null it receives the settled all-false reset state.
Netlist random_netlist(std::uint64_t seed,
                       const RandomNetlistOptions& options = {},
                       std::vector<bool>* reset = nullptr);

// --- structure-aware mutation ------------------------------------------------

/// The edits mutate_netlist can apply.  Every edit preserves structural
/// validity by construction (arities respected, signal ids stable); whether
/// the mutant *settles* is re-checked afterwards and failures are retried.
enum class NetlistMutation {
  GateSwap,      ///< replace one gate's type with another of the same arity
  Rewire,        ///< re-point one fanin pin at a different signal
  Splice,        ///< insert a new gate and wire a consumer (or output) to it
  ResetPerturb,  ///< keep the structure, settle from a random start state
};

/// Name of a mutation kind (diagnostics).
const char* netlist_mutation_name(NetlistMutation m);

struct MutatedNetlist {
  Netlist netlist;
  /// A stable state of the mutant (its reset for CSSG/ATPG purposes): the
  /// settled all-false state for structural edits, the settled perturbed
  /// state for ResetPerturb.
  std::vector<bool> reset;
  NetlistMutation mutation = NetlistMutation::GateSwap;
};

struct MutateOptions {
  /// Candidate edits tried before giving up (an edit is discarded when the
  /// mutant fails to settle to a stable state within the simulation bound).
  std::size_t max_attempts = 16;
  /// Permit the Splice edit to grow the circuit (off caps the signal count,
  /// which keeps the brute-force differential oracle affordable).
  bool allow_growth = true;
};

/// Derive a new *valid* circuit from `base` by one random structure-aware
/// edit.  The result passes check_invariants() and has a verified stable
/// reset state; std::nullopt after options.max_attempts failed candidates
/// (e.g. a base so dense no perturbation settles).  Deterministic in the
/// Rng stream: same base + same Rng state, same mutant, on every platform.
std::optional<MutatedNetlist> mutate_netlist(const Netlist& base, Rng& rng,
                                             const MutateOptions& options = {});

}  // namespace xatpg
