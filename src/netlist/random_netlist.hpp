// Seeded random netlist generator.  Shared by the test fixtures
// (tests/fixtures.hpp locks the seed-7 shape as a golden value) and the
// perf-corpus harness (src/perf), which runs whole seeded families through
// the ATPG flow as a synthetic workload.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace xatpg {

struct RandomNetlistOptions {
  std::size_t num_inputs = 3;
  /// Non-input gates to add on top of the inputs.
  std::size_t num_gates = 8;
  /// Allow state-holding C-elements in the mix (the circuit stays
  /// structurally feed-forward; state lives in the gates' own outputs, so a
  /// gate-by-gate relaxation always settles).
  bool allow_state_holding = true;
};

/// Deterministic random netlist: same seed, same circuit, on every platform
/// (the generator only draws from Rng).  The result passes check_invariants() and
/// settles from the all-false state; the final gate is the primary output.
/// When `reset` is non-null it receives the settled all-false reset state.
Netlist random_netlist(std::uint64_t seed,
                       const RandomNetlistOptions& options = {},
                       std::vector<bool>* reset = nullptr);

}  // namespace xatpg
