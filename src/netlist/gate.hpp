// Gate library for the asynchronous-circuit netlist model.
//
// Following the paper's circuit model (§3): a circuit is an interconnection
// of gates, each paired with an unbounded positive inertial delay.  Primary
// inputs are modeled as identity-function buffers driven by the environment.
// Sequential primitives of speed-independent design (Muller C-element,
// generalized C-element) are atomic gates whose next value depends on their
// own current output — exactly the "complex gate" assumption under which
// SI synthesis guarantees hazard freedom.
//
// Gate semantics are defined once, generically, over a boolean-like algebra
// (eval_gate below) so that plain simulation, two-rail ternary simulation,
// 64-lane parallel fault simulation, and symbolic BDD construction all share
// one definition and cannot drift apart.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/check.hpp"
#include "xatpg/types.hpp"  // SignalId / kNoSignal (public API types)

namespace xatpg {

enum class GateType : std::uint8_t {
  Input,  ///< primary input (identity buffer driven by the environment)
  Buf,
  Not,
  And,
  Or,
  Nand,
  Nor,
  Xor,
  Xnor,
  Maj,    ///< 3-input majority
  Celem,  ///< Muller C-element: all-1 sets, all-0 resets, otherwise holds
  Gc,     ///< generalized C-element: set/reset SOP covers, otherwise holds
  Sop,    ///< two-level sum-of-products complex gate
};

/// Human-readable gate type name (used by the netlist writer).
const char* gate_type_name(GateType type);
/// Parse a gate type name; arity suffixes ("AND2") are accepted.
GateType parse_gate_type(const std::string& token);
/// True for gates whose next value depends on their own current output.
bool is_state_holding(GateType type);

/// One product term over a gate's fanins: lits[i] is 0 (negated), 1 (plain),
/// or -1 (absent) for fanin position i.
struct Cube {
  std::vector<std::int8_t> lits;

  bool operator==(const Cube&) const = default;
};

/// Sum-of-products cover.
using Cover = std::vector<Cube>;

/// A gate instance.  The gate's output signal id equals its index in the
/// owning Netlist, so a Gate stores only type, name and fanins.
struct Gate {
  GateType type = GateType::Buf;
  std::string name;
  std::vector<SignalId> fanins;
  Cover cover;        ///< Sop: on-cover.  Gc: set cover.
  Cover reset_cover;  ///< Gc only: reset cover.
};

/// Minimal algebra concept used by eval_gate.  Implementations exist for
/// bool (sim), two-rail ternary words (sim/parallel), and Bdd (sgraph).
///
///   V zero(), V one(), V and_(V,V), V or_(V,V), V not_(V)
///
/// eval_gate computes the *target* value of the gate: the value the gate
/// output will assume once it stabilizes with the given fanin values.  A
/// gate is excited when its current output differs from this target.
template <typename V, typename Ops>
V eval_cover(const Cover& cover, const std::vector<V>& fanin_vals,
             const Ops& ops) {
  V sum = ops.zero();
  for (const Cube& cube : cover) {
    XATPG_CHECK(cube.lits.size() == fanin_vals.size());
    V prod = ops.one();
    for (std::size_t i = 0; i < cube.lits.size(); ++i) {
      if (cube.lits[i] == 1) {
        prod = ops.and_(prod, fanin_vals[i]);
      } else if (cube.lits[i] == 0) {
        prod = ops.and_(prod, ops.not_(fanin_vals[i]));
      }
    }
    sum = ops.or_(sum, prod);
  }
  return sum;
}

template <typename V, typename Ops>
V eval_gate(const Gate& gate, const std::vector<V>& fanin_vals, const V& own,
            const Ops& ops) {
  switch (gate.type) {
    case GateType::Input:
      // The environment drives primary inputs; their target is their
      // current value (they are never excited by the circuit itself).
      return own;
    case GateType::Buf:
      XATPG_CHECK(fanin_vals.size() == 1);
      return fanin_vals[0];
    case GateType::Not:
      XATPG_CHECK(fanin_vals.size() == 1);
      return ops.not_(fanin_vals[0]);
    case GateType::And:
    case GateType::Nand: {
      V acc = ops.one();
      for (const V& v : fanin_vals) acc = ops.and_(acc, v);
      return gate.type == GateType::And ? acc : ops.not_(acc);
    }
    case GateType::Or:
    case GateType::Nor: {
      V acc = ops.zero();
      for (const V& v : fanin_vals) acc = ops.or_(acc, v);
      return gate.type == GateType::Or ? acc : ops.not_(acc);
    }
    case GateType::Xor:
    case GateType::Xnor: {
      V acc = ops.zero();
      for (const V& v : fanin_vals) {
        // a xor b = (a & !b) | (!a & b)
        acc = ops.or_(ops.and_(acc, ops.not_(v)), ops.and_(ops.not_(acc), v));
      }
      return gate.type == GateType::Xor ? acc : ops.not_(acc);
    }
    case GateType::Maj: {
      XATPG_CHECK(fanin_vals.size() == 3);
      const V& a = fanin_vals[0];
      const V& b = fanin_vals[1];
      const V& c = fanin_vals[2];
      return ops.or_(ops.or_(ops.and_(a, b), ops.and_(b, c)), ops.and_(a, c));
    }
    case GateType::Celem: {
      XATPG_CHECK(fanin_vals.size() >= 2);
      V all = ops.one();
      V any = ops.zero();
      for (const V& v : fanin_vals) {
        all = ops.and_(all, v);
        any = ops.or_(any, v);
      }
      // out' = AND(all) | own & OR(any)
      return ops.or_(all, ops.and_(own, any));
    }
    case GateType::Gc: {
      const V set = eval_cover(gate.cover, fanin_vals, ops);
      const V reset = eval_cover(gate.reset_cover, fanin_vals, ops);
      // out' = set | own & !reset
      return ops.or_(set, ops.and_(own, ops.not_(reset)));
    }
    case GateType::Sop:
      return eval_cover(gate.cover, fanin_vals, ops);
  }
  XATPG_CHECK_MSG(false, "unhandled gate type");
  return ops.zero();
}

/// Boolean algebra instance for eval_gate.
struct BoolOps {
  bool zero() const { return false; }
  bool one() const { return true; }
  bool and_(bool a, bool b) const { return a && b; }
  bool or_(bool a, bool b) const { return a || b; }
  bool not_(bool a) const { return !a; }
};

}  // namespace xatpg
