#include "sgraph/cssg.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"
#include "util/log.hpp"

namespace xatpg {

std::string ExplicitCssg::key(const std::vector<bool>& state) {
  std::string k(state.size(), '0');
  for (std::size_t i = 0; i < state.size(); ++i)
    if (state[i]) k[i] = '1';
  return k;
}

std::optional<std::uint32_t> ExplicitCssg::find(
    const std::vector<bool>& state) const {
  auto it = index.find(key(state));
  if (it == index.end()) return std::nullopt;
  return it->second;
}

Cssg::Cssg(const Netlist& netlist,
           const std::vector<std::vector<bool>>& reset_states,
           const CssgOptions& options)
    : enc_(netlist, options.order, options.reorder), options_(options) {
  XATPG_CHECK_MSG(!reset_states.empty(), "need at least one reset state");
  reset_set_ = enc_.mgr().bdd_false();
  for (const auto& state : reset_states) {
    XATPG_CHECK_MSG(netlist.is_stable_state(state),
                    "reset state must be stable");
    reset_set_ |= enc_.state_minterm_cur(state);
  }
  build_relations();
  traverse();
  build_tcr_and_prune();
  build_rings();
  stats_.peak_bdd_nodes = enc_.mgr().peak_nodes();
}

Cssg::Cssg(const Cssg& base, BddManager::Delta tag)
    : enc_(base.enc_, tag), options_(base.options_), stats_(base.stats_) {
  BddManager& m = enc_.mgr();
  r_delta_ = m.adopt(base.r_delta_);
  r_input_ = m.adopt(base.r_input_);
  reachable_ = m.adopt(base.reachable_);
  stable_reachable_ = m.adopt(base.stable_reachable_);
  tcr_ = m.adopt(base.tcr_);
  cssg_ = m.adopt(base.cssg_);
  cssg_reachable_ = m.adopt(base.cssg_reachable_);
  rings_.reserve(base.rings_.size());
  for (const Bdd& ring : base.rings_) rings_.push_back(m.adopt(ring));
  reset_set_ = m.adopt(base.reset_set_);
  test_mode_reachable_ = m.adopt(base.test_mode_reachable_);
  test_mode_reachable_built_ = base.test_mode_reachable_built_;
}

void Cssg::freeze() {
  test_mode_reachable();  // force the lazy artifact while still mutable
  enc_.mgr().freeze();
}

void Cssg::build_relations() {
  BddManager& mgr = enc_.mgr();
  const std::size_t n = enc_.num_signals();

  // Prefix/suffix products of per-signal equalities so each gate's "all
  // other signals unchanged" frame condition is built in O(n) total work.
  std::vector<Bdd> eq(n);
  for (SignalId s = 0; s < n; ++s) eq[s] = enc_.eq_cur_next(s);
  std::vector<Bdd> prefix(n + 1), suffix(n + 1);
  prefix[0] = mgr.bdd_true();
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] & eq[i];
  suffix[n] = mgr.bdd_true();
  for (std::size_t i = n; i-- > 0;) suffix[i] = suffix[i + 1] & eq[i];
  const Bdd all_eq = prefix[n];

  const Bdd stable = enc_.stable();

  // R_delta: some excited gate fires (output inverts, all else frozen), or
  // the state is stable and loops to itself.
  Bdd r_delta = stable & all_eq;
  for (SignalId s = 0; s < n; ++s) {
    if (enc_.netlist().is_input(s)) continue;
    const Bdd excited = enc_.cur(s) ^ enc_.target(s);
    const Bdd fires = enc_.cur(s) ^ enc_.next(s);  // next = !cur
    r_delta |= excited & fires & prefix[s] & suffix[s + 1];
  }
  r_delta_ = r_delta;

  // R_I: on a stable state, some non-empty subset of primary inputs flips;
  // gate outputs are unchanged ("no gate has begun to switch yet", §3.2).
  Bdd gates_eq = mgr.bdd_true();
  Bdd inputs_eq = mgr.bdd_true();
  for (SignalId s = 0; s < n; ++s) {
    if (enc_.netlist().is_input(s)) {
      inputs_eq &= eq[s];
    } else {
      gates_eq &= eq[s];
    }
  }
  r_input_ = stable & gates_eq & !inputs_eq;
}

void Cssg::traverse() {
  // Standard symbolic BFS over R = R_I ∪ R_delta (the TCSG recursion of
  // §3.2, computed as in Coudert/Berthet/Madre).
  BddManager& mgr = enc_.mgr();
  const Bdd relation = r_input_ | r_delta_;
  const Bdd cur_cube = enc_.cur_cube();
  Bdd reached = reset_set_;
  Bdd frontier = reset_set_;
  while (!frontier.is_false()) {
    ++stats_.traversal_iterations;
    const Bdd img_next = mgr.and_exists(relation, frontier, cur_cube);
    const Bdd img = enc_.next_to_cur(img_next);
    frontier = img & !reached;
    reached |= frontier;
  }
  reachable_ = reached;
  stable_reachable_ = reached & enc_.stable();
  stats_.reachable_states = enc_.count_states_cur(reachable_);
  stats_.stable_states = enc_.count_states_cur(stable_reachable_);
}

void Cssg::build_tcr_and_prune() {
  BddManager& mgr = enc_.mgr();

  // A(x, y): y reachable from stable reachable x by one input pattern and
  // j gate transitions (stable y persists via R_delta self-loops).
  Bdd a = r_input_ & stable_reachable_;
  // R_delta with present-state renamed to the aux group: Rd(w, y).
  const Bdd r_delta_wy = enc_.cur_to_aux(r_delta_);
  const Bdd aux_cube = enc_.aux_cube();
  for (std::size_t step = 0; step < options_.k; ++step) {
    ++stats_.tcr_steps;
    const Bdd a_xw = enc_.next_to_aux(a);
    const Bdd a_next = mgr.and_exists(a_xw, r_delta_wy, aux_cube);
    if (a_next == a) break;  // all trajectories settled early
    a = a_next;
  }
  tcr_ = a;
  const auto n_signals = static_cast<std::int64_t>(enc_.num_signals());
  stats_.tcr_pairs = mgr.sat_count(tcr_, mgr.num_vars(), n_signals);

  // Sibling analysis: compare the outcome y against every other k-step
  // outcome w of the same source state x and the same input pattern.
  const Bdd a_xw = enc_.next_to_aux(tcr_);
  Bdd eq_inputs_yw = mgr.bdd_true();
  Bdd eq_all_yw = mgr.bdd_true();
  for (SignalId s = 0; s < enc_.num_signals(); ++s) {
    const Bdd eq_s = !(enc_.next(s) ^ enc_.aux(s));
    eq_all_yw &= eq_s;
    if (enc_.netlist().is_input(s)) eq_inputs_yw &= eq_s;
  }
  const Bdd stable_w = enc_.cur_to_aux(enc_.stable());

  // Non-confluence: a distinct sibling outcome under the same pattern.
  const Bdd nonconf =
      tcr_ & mgr.and_exists(a_xw, eq_inputs_yw & !eq_all_yw, aux_cube);
  // Oscillation / late settling: an unstable sibling under the same pattern
  // (covers y itself being unstable).
  const Bdd unstable =
      tcr_ & mgr.and_exists(a_xw, eq_inputs_yw & !stable_w, aux_cube);

  const Bdd stable_y = enc_.cur_to_next(enc_.stable());
  cssg_ = tcr_ & stable_y & !nonconf & !unstable;

  stats_.nonconfluent_pairs =
      mgr.sat_count(nonconf, mgr.num_vars(), n_signals);
  stats_.unstable_pairs =
      mgr.sat_count(unstable & !nonconf, mgr.num_vars(), n_signals);
  stats_.cssg_edges = mgr.sat_count(cssg_, mgr.num_vars(), n_signals);
}

void Cssg::build_rings() {
  BddManager& mgr = enc_.mgr();
  const Bdd cur_cube = enc_.cur_cube();
  rings_.clear();
  rings_.push_back(reset_set_);
  Bdd reached = reset_set_;
  while (true) {
    const Bdd img_next = mgr.and_exists(cssg_, rings_.back(), cur_cube);
    const Bdd img = enc_.next_to_cur(img_next);
    const Bdd fresh = img & !reached;
    if (fresh.is_false()) break;
    reached |= fresh;
    rings_.push_back(fresh);
  }
  cssg_reachable_ = reached;
  stats_.cssg_reachable_states = enc_.count_states_cur(cssg_reachable_);
}

const Bdd& Cssg::test_mode_reachable() const {
  if (test_mode_reachable_built_) return test_mode_reachable_;
  BddManager& mgr = enc_.mgr();

  // ValidRI(x, z): input step of R_I whose pattern matches some CSSG edge
  // out of x (i.e. the tester is allowed to apply it).
  Bdd eq_inputs_zy = mgr.bdd_true();  // next(z) group vs aux(y) group
  for (SignalId s = 0; s < enc_.num_signals(); ++s)
    if (enc_.netlist().is_input(s))
      eq_inputs_zy &= !(enc_.next(s) ^ enc_.aux(s));
  const Bdd cssg_xw = enc_.next_to_aux(cssg_);
  const Bdd valid_ri =
      r_input_ & mgr.and_exists(cssg_xw, eq_inputs_zy, enc_.aux_cube());

  // Closure of the CSSG-reachable stable states under ValidRI and R_delta.
  const Bdd cur_cube = enc_.cur_cube();
  const Bdd relation = valid_ri | r_delta_;
  Bdd reached = cssg_reachable_;
  Bdd frontier = reached;
  while (!frontier.is_false()) {
    const Bdd img = enc_.next_to_cur(
        mgr.and_exists(relation, frontier, cur_cube));
    frontier = img & !reached;
    reached |= frontier;
  }
  test_mode_reachable_ = reached;
  test_mode_reachable_built_ = true;
  return test_mode_reachable_;
}

Bdd Cssg::image(const Bdd& states) const {
  return enc_.next_to_cur(
      enc_.mgr().and_exists(cssg_, states, enc_.cur_cube()));
}

Bdd Cssg::preimage(const Bdd& states) const {
  const Bdd states_next = enc_.cur_to_next(states);
  return enc_.mgr().exists(cssg_ & states_next, enc_.next_cube());
}

std::vector<bool> Cssg::input_values_of(const std::vector<bool>& state) const {
  std::vector<bool> values;
  values.reserve(enc_.netlist().inputs().size());
  for (const SignalId in : enc_.netlist().inputs()) values.push_back(state[in]);
  return values;
}

std::optional<Justification> Cssg::justify(const Bdd& targets) const {
  // Find the innermost onion ring touching the target set, then walk the
  // rings backwards picking one concrete predecessor per step.
  std::size_t hit = rings_.size();
  for (std::size_t i = 0; i < rings_.size(); ++i) {
    if (!(rings_[i] & targets).is_false()) {
      hit = i;
      break;
    }
  }
  if (hit == rings_.size()) return std::nullopt;

  Justification result;
  std::vector<bool> state = enc_.pick_state_cur(rings_[hit] & targets);
  result.final_state = state;
  std::vector<std::vector<bool>> vectors_rev;
  for (std::size_t i = hit; i > 0; --i) {
    vectors_rev.push_back(input_values_of(state));
    const Bdd preds = preimage(enc_.state_minterm_cur(state)) & rings_[i - 1];
    XATPG_CHECK_MSG(!preds.is_false(), "onion rings are inconsistent");
    state = enc_.pick_state_cur(preds);
  }
  result.reset_state = state;
  result.vectors.assign(vectors_rev.rbegin(), vectors_rev.rend());
  return result;
}

ExplicitCssg Cssg::extract_explicit() const {
  ExplicitCssg graph;
  const auto add_state = [&](const std::vector<bool>& state) -> std::uint32_t {
    const std::string k = ExplicitCssg::key(state);
    auto it = graph.index.find(k);
    if (it != graph.index.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(graph.states.size());
    XATPG_CHECK_MSG(graph.states.size() < options_.max_explicit_states,
                    "explicit CSSG exceeds state limit");
    graph.states.push_back(state);
    graph.edges.emplace_back();
    graph.index.emplace(k, id);
    return id;
  };

  for (const auto& reset : enc_.all_states_cur(reset_set_))
    graph.reset_ids.push_back(add_state(reset));

  std::vector<std::uint32_t> worklist = graph.reset_ids;
  while (!worklist.empty()) {
    const std::uint32_t id = worklist.back();
    worklist.pop_back();
    const Bdd succs_next = enc_.mgr().and_exists(
        cssg_, enc_.state_minterm_cur(graph.states[id]), enc_.cur_cube());
    const Bdd succs = enc_.next_to_cur(succs_next);
    if (succs.is_false()) continue;
    for (const auto& succ : enc_.all_states_cur(succs)) {
      const bool fresh = !graph.find(succ).has_value();
      const std::uint32_t to = add_state(succ);
      graph.edges[id].push_back(
          ExplicitCssg::Edge{input_values_of(succ), to});
      if (fresh) worklist.push_back(to);
    }
  }
  return graph;
}

std::string Cssg::to_dot() const {
  const ExplicitCssg graph = extract_explicit();
  const auto& inputs = enc_.netlist().inputs();
  std::ostringstream os;
  os << "digraph cssg {\n  rankdir=LR;\n";
  for (std::uint32_t id = 0; id < graph.states.size(); ++id) {
    os << "  s" << id << " [label=\"" << ExplicitCssg::key(graph.states[id])
       << "\"";
    if (std::find(graph.reset_ids.begin(), graph.reset_ids.end(), id) !=
        graph.reset_ids.end())
      os << " shape=doublecircle";
    os << "];\n";
  }
  for (std::uint32_t id = 0; id < graph.states.size(); ++id) {
    for (const auto& edge : graph.edges[id]) {
      os << "  s" << id << " -> s" << edge.to << " [label=\"";
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        if (graph.states[id][inputs[i]] != edge.pattern[i])
          os << enc_.netlist().signal_name(inputs[i])
             << (edge.pattern[i] ? "+" : "-");
      }
      os << "\"];\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace xatpg
