#include "sgraph/encoding.hpp"

#include <cmath>

#include <algorithm>

#include "util/check.hpp"

namespace xatpg {

const char* var_order_name(VarOrder order) {
  switch (order) {
    case VarOrder::Interleaved: return "interleaved";
    case VarOrder::Blocked: return "blocked";
    case VarOrder::ReverseInterleaved: return "reverse-interleaved";
    case VarOrder::Sifted: return "sifted";
  }
  return "?";
}

namespace {
/// eval_gate algebra over BDDs.
struct BddOps {
  BddManager* mgr;
  Bdd zero() const { return mgr->bdd_false(); }
  Bdd one() const { return mgr->bdd_true(); }
  Bdd and_(const Bdd& a, const Bdd& b) const { return a & b; }
  Bdd or_(const Bdd& a, const Bdd& b) const { return a | b; }
  Bdd not_(const Bdd& a) const { return !a; }
};
}  // namespace

SymbolicEncoding::SymbolicEncoding(const Netlist& netlist, VarOrder order,
                                   const ReorderPolicy& reorder)
    : netlist_(&netlist),
      mgr_(static_cast<std::uint32_t>(3 * netlist.num_signals())) {
  build_layout(order);
  target_cache_.resize(netlist.num_signals());
  pick_descent_is_canonical_ =
      std::is_sorted(cur_vars_.begin(), cur_vars_.end());

  // Group-preserving sifting: each signal's (cur, next, aux) triple moves
  // as one block, so the renaming permutations stay intra-triple and the
  // group cubes stay tight.  Blocked's triples are not level-adjacent, so
  // it sifts ungrouped (still correct, just coarser).
  if (order != VarOrder::Blocked && netlist.num_signals() > 0) {
    std::vector<std::vector<std::uint32_t>> groups;
    groups.reserve(netlist.num_signals());
    for (SignalId s = 0; s < netlist.num_signals(); ++s)
      groups.push_back({cur_vars_[s], next_vars_[s], aux_vars_[s]});
    mgr_.set_var_groups(groups);
  }
  ReorderPolicy policy = reorder;
  if (order == VarOrder::Sifted) policy.enabled = true;
  if (policy.enabled) mgr_.set_reorder_policy(policy);
}

SymbolicEncoding::SymbolicEncoding(const SymbolicEncoding& base,
                                   BddManager::Delta tag)
    : netlist_(base.netlist_),
      mgr_(base.mgr_, tag),
      pick_descent_is_canonical_(base.pick_descent_is_canonical_),
      cur_vars_(base.cur_vars_),
      next_vars_(base.next_vars_),
      aux_vars_(base.aux_vars_),
      perm_cur_next_(base.perm_cur_next_),
      perm_next_aux_(base.perm_next_aux_),
      perm_cur_aux_(base.perm_cur_aux_) {
  // Adopt (not copy!) the base's cached artifacts: adopt() rebinds the edge
  // word to this view's manager without touching the base's handle registry,
  // which is what keeps view construction safe while other views run.
  target_cache_.resize(base.target_cache_.size());
  for (std::size_t s = 0; s < base.target_cache_.size(); ++s)
    target_cache_[s] = mgr_.adopt(base.target_cache_[s]);
  stable_cache_ = mgr_.adopt(base.stable_cache_);
  stable_built_ = base.stable_built_;
}

void SymbolicEncoding::build_layout(VarOrder order) {
  const auto n = static_cast<std::uint32_t>(netlist_->num_signals());
  cur_vars_.resize(n);
  next_vars_.resize(n);
  aux_vars_.resize(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    const std::uint32_t rank =
        (order == VarOrder::ReverseInterleaved) ? (n - 1 - s) : s;
    switch (order) {
      case VarOrder::Interleaved:
      case VarOrder::ReverseInterleaved:
      case VarOrder::Sifted:  // interleaved start; sifting re-sorts later
        cur_vars_[s] = 3 * rank;
        next_vars_[s] = 3 * rank + 1;
        aux_vars_[s] = 3 * rank + 2;
        break;
      case VarOrder::Blocked:
        cur_vars_[s] = rank;
        next_vars_[s] = n + rank;
        aux_vars_[s] = 2 * n + rank;
        break;
    }
  }
  // Build permutation maps (identity outside the swapped groups).
  const std::uint32_t total = 3 * n;
  perm_cur_next_.resize(total);
  perm_next_aux_.resize(total);
  perm_cur_aux_.resize(total);
  for (std::uint32_t v = 0; v < total; ++v)
    perm_cur_next_[v] = perm_next_aux_[v] = perm_cur_aux_[v] = v;
  for (std::uint32_t s = 0; s < n; ++s) {
    perm_cur_next_[cur_vars_[s]] = next_vars_[s];
    perm_cur_next_[next_vars_[s]] = cur_vars_[s];
    perm_next_aux_[next_vars_[s]] = aux_vars_[s];
    perm_next_aux_[aux_vars_[s]] = next_vars_[s];
    perm_cur_aux_[cur_vars_[s]] = aux_vars_[s];
    perm_cur_aux_[aux_vars_[s]] = cur_vars_[s];
  }
}

Bdd SymbolicEncoding::state_minterm_cur(const std::vector<bool>& state) const {
  XATPG_CHECK(state.size() == num_signals());
  return mgr_.make_minterm(cur_vars_, state);
}

Bdd SymbolicEncoding::state_minterm_next(const std::vector<bool>& state) const {
  XATPG_CHECK(state.size() == num_signals());
  return mgr_.make_minterm(next_vars_, state);
}

std::vector<bool> SymbolicEncoding::pick_state_cur(const Bdd& set) const {
  XATPG_CHECK_MSG(!set.is_false(), "cannot pick a state from the empty set");
  // Fast path: an allocation-free root-to-leaf descent (lo preferred)
  // yields the lexicographic minimum in LEVEL order; when cur levels still
  // coincide with signal order that is already the canonical answer.
  if (pick_descent_is_canonical_ && mgr_.swap_count() == 0) {
    const auto tri = mgr_.pick_minterm(set, cur_vars_);
    std::vector<bool> state(num_signals());
    for (SignalId s = 0; s < num_signals(); ++s)
      state[s] = tri[s] == Tri::One;  // DontCare -> 0 stays inside the set
    return state;
  }
  // Greedy per-signal cofactoring in signal order: prefer 0, fall back to 1
  // when forcing 0 empties the set.  This yields the lexicographically
  // smallest member regardless of the manager's current variable order —
  // unlike the raw descent above, whose choice follows levels and would
  // drift under reordering.
  std::vector<bool> state(num_signals());
  Bdd rest = set;
  for (SignalId s = 0; s < num_signals(); ++s) {
    const Bdd zero = mgr_.cofactor(rest, cur_vars_[s], false);
    if (zero.is_false()) {
      state[s] = true;
      rest = mgr_.cofactor(rest, cur_vars_[s], true);
    } else {
      state[s] = false;
      rest = zero;
    }
  }
  return state;
}

namespace {
std::vector<std::vector<bool>> enum_states_over(
    BddManager& mgr, const Bdd& set, const std::vector<std::uint32_t>& vars,
    std::size_t limit) {
  // all_minterms wants variables in strictly ascending LEVEL order (which
  // tracks the dynamic order, not the variable indices); sort the group and
  // remember which signal each position corresponds to.
  std::vector<std::pair<std::uint32_t, SignalId>> order;
  order.reserve(vars.size());
  for (SignalId s = 0; s < vars.size(); ++s)
    order.emplace_back(mgr.level_of(vars[s]), s);
  std::sort(order.begin(), order.end());
  std::vector<std::uint32_t> sorted_vars;
  sorted_vars.reserve(order.size());
  for (const auto& [lvl, s] : order) sorted_vars.push_back(vars[s]);

  const auto raw = mgr.all_minterms(set, sorted_vars, limit);
  std::vector<std::vector<bool>> out;
  out.reserve(raw.size());
  for (const auto& assignment : raw) {
    std::vector<bool> state(vars.size());
    for (std::size_t pos = 0; pos < order.size(); ++pos)
      state[order[pos].second] = assignment[pos];
    out.push_back(std::move(state));
  }
  // The raw enumeration follows the level order; canonicalize to
  // lexicographic signal order so state ids, edge lists and everything
  // derived from them are identical for every static layout and at any
  // point of a dynamic-reordering run.  (A no-op for the default
  // interleaved layout, whose level order already enumerates this way.)
  std::sort(out.begin(), out.end());
  return out;
}
}  // namespace

std::vector<std::vector<bool>> SymbolicEncoding::all_states_cur(
    const Bdd& set, std::size_t limit) const {
  return enum_states_over(mgr_, set, cur_vars_, limit);
}

std::vector<std::vector<bool>> SymbolicEncoding::all_states_next(
    const Bdd& set, std::size_t limit) const {
  return enum_states_over(mgr_, set, next_vars_, limit);
}

Bdd SymbolicEncoding::target(SignalId s) const {
  if (target_cache_[s].valid()) return target_cache_[s];
  const Gate& g = netlist_->gate(s);
  Bdd result;
  if (g.type == GateType::Input) {
    result = cur(s);
  } else {
    std::vector<Bdd> fanin_vals;
    fanin_vals.reserve(g.fanins.size());
    for (const SignalId f : g.fanins) fanin_vals.push_back(cur(f));
    result = eval_gate(g, fanin_vals, cur(s), BddOps{&mgr_});
  }
  target_cache_[s] = result;
  return result;
}

Bdd SymbolicEncoding::stable() const {
  if (stable_built_) return stable_cache_;
  Bdd acc = mgr_.bdd_true();
  for (SignalId s = 0; s < num_signals(); ++s) {
    if (netlist_->is_input(s)) continue;  // inputs are held by the tester
    acc &= !(cur(s) ^ target(s));
  }
  stable_cache_ = acc;
  stable_built_ = true;
  return stable_cache_;
}

Bdd SymbolicEncoding::eq_cur_next(SignalId s) const { return !(cur(s) ^ next(s)); }

double SymbolicEncoding::count_states_cur(const Bdd& set) const {
  // sat_count over the full 3n universe counts each cur-state 2^(2n) times;
  // divide on sat_count's internal exponent so the raw count never has to
  // fit in a double (it would overflow past ~340 signals).
  return mgr_.sat_count(set, mgr_.num_vars(),
                        2 * static_cast<std::int64_t>(num_signals()));
}

}  // namespace xatpg
