#include "sgraph/encoding.hpp"

#include <cmath>

#include <algorithm>

#include "util/check.hpp"

namespace xatpg {

const char* var_order_name(VarOrder order) {
  switch (order) {
    case VarOrder::Interleaved: return "interleaved";
    case VarOrder::Blocked: return "blocked";
    case VarOrder::ReverseInterleaved: return "reverse-interleaved";
  }
  return "?";
}

namespace {
/// eval_gate algebra over BDDs.
struct BddOps {
  BddManager* mgr;
  Bdd zero() const { return mgr->bdd_false(); }
  Bdd one() const { return mgr->bdd_true(); }
  Bdd and_(const Bdd& a, const Bdd& b) const { return a & b; }
  Bdd or_(const Bdd& a, const Bdd& b) const { return a | b; }
  Bdd not_(const Bdd& a) const { return !a; }
};
}  // namespace

SymbolicEncoding::SymbolicEncoding(const Netlist& netlist, VarOrder order)
    : netlist_(&netlist),
      mgr_(static_cast<std::uint32_t>(3 * netlist.num_signals())) {
  build_layout(order);
  target_cache_.resize(netlist.num_signals());
}

void SymbolicEncoding::build_layout(VarOrder order) {
  const auto n = static_cast<std::uint32_t>(netlist_->num_signals());
  cur_vars_.resize(n);
  next_vars_.resize(n);
  aux_vars_.resize(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    const std::uint32_t rank =
        (order == VarOrder::ReverseInterleaved) ? (n - 1 - s) : s;
    switch (order) {
      case VarOrder::Interleaved:
      case VarOrder::ReverseInterleaved:
        cur_vars_[s] = 3 * rank;
        next_vars_[s] = 3 * rank + 1;
        aux_vars_[s] = 3 * rank + 2;
        break;
      case VarOrder::Blocked:
        cur_vars_[s] = rank;
        next_vars_[s] = n + rank;
        aux_vars_[s] = 2 * n + rank;
        break;
    }
  }
  // Build permutation maps (identity outside the swapped groups).
  const std::uint32_t total = 3 * n;
  perm_cur_next_.resize(total);
  perm_next_aux_.resize(total);
  perm_cur_aux_.resize(total);
  for (std::uint32_t v = 0; v < total; ++v)
    perm_cur_next_[v] = perm_next_aux_[v] = perm_cur_aux_[v] = v;
  for (std::uint32_t s = 0; s < n; ++s) {
    perm_cur_next_[cur_vars_[s]] = next_vars_[s];
    perm_cur_next_[next_vars_[s]] = cur_vars_[s];
    perm_next_aux_[next_vars_[s]] = aux_vars_[s];
    perm_next_aux_[aux_vars_[s]] = next_vars_[s];
    perm_cur_aux_[cur_vars_[s]] = aux_vars_[s];
    perm_cur_aux_[aux_vars_[s]] = cur_vars_[s];
  }
}

Bdd SymbolicEncoding::state_minterm_cur(const std::vector<bool>& state) const {
  XATPG_CHECK(state.size() == num_signals());
  return mgr_.make_minterm(cur_vars_, state);
}

Bdd SymbolicEncoding::state_minterm_next(const std::vector<bool>& state) const {
  XATPG_CHECK(state.size() == num_signals());
  return mgr_.make_minterm(next_vars_, state);
}

std::vector<bool> SymbolicEncoding::pick_state_cur(const Bdd& set) const {
  const auto tri = mgr_.pick_minterm(set, cur_vars_);
  std::vector<bool> state(num_signals());
  for (SignalId s = 0; s < num_signals(); ++s)
    state[s] = tri[s] == Tri::One;  // DontCare -> 0 stays inside the set
  return state;
}

namespace {
std::vector<std::vector<bool>> enum_states_over(
    BddManager& mgr, const Bdd& set, const std::vector<std::uint32_t>& vars,
    std::size_t limit) {
  // all_minterms wants strictly ascending variable indices; sort the group
  // and remember which signal each position corresponds to.
  std::vector<std::pair<std::uint32_t, SignalId>> order;
  order.reserve(vars.size());
  for (SignalId s = 0; s < vars.size(); ++s) order.emplace_back(vars[s], s);
  std::sort(order.begin(), order.end());
  std::vector<std::uint32_t> sorted_vars;
  sorted_vars.reserve(order.size());
  for (const auto& [v, s] : order) sorted_vars.push_back(v);

  const auto raw = mgr.all_minterms(set, sorted_vars, limit);
  std::vector<std::vector<bool>> out;
  out.reserve(raw.size());
  for (const auto& assignment : raw) {
    std::vector<bool> state(vars.size());
    for (std::size_t pos = 0; pos < order.size(); ++pos)
      state[order[pos].second] = assignment[pos];
    out.push_back(std::move(state));
  }
  return out;
}
}  // namespace

std::vector<std::vector<bool>> SymbolicEncoding::all_states_cur(
    const Bdd& set, std::size_t limit) const {
  return enum_states_over(mgr_, set, cur_vars_, limit);
}

std::vector<std::vector<bool>> SymbolicEncoding::all_states_next(
    const Bdd& set, std::size_t limit) const {
  return enum_states_over(mgr_, set, next_vars_, limit);
}

Bdd SymbolicEncoding::target(SignalId s) const {
  if (target_cache_[s].valid()) return target_cache_[s];
  const Gate& g = netlist_->gate(s);
  Bdd result;
  if (g.type == GateType::Input) {
    result = cur(s);
  } else {
    std::vector<Bdd> fanin_vals;
    fanin_vals.reserve(g.fanins.size());
    for (const SignalId f : g.fanins) fanin_vals.push_back(cur(f));
    result = eval_gate(g, fanin_vals, cur(s), BddOps{&mgr_});
  }
  target_cache_[s] = result;
  return result;
}

Bdd SymbolicEncoding::stable() const {
  if (stable_built_) return stable_cache_;
  Bdd acc = mgr_.bdd_true();
  for (SignalId s = 0; s < num_signals(); ++s) {
    if (netlist_->is_input(s)) continue;  // inputs are held by the tester
    acc &= !(cur(s) ^ target(s));
  }
  stable_cache_ = acc;
  stable_built_ = true;
  return stable_cache_;
}

Bdd SymbolicEncoding::eq_cur_next(SignalId s) const { return !(cur(s) ^ next(s)); }

double SymbolicEncoding::count_states_cur(const Bdd& set) const {
  // sat_count over the full 3n universe counts each cur-state 2^(2n) times;
  // divide on sat_count's internal exponent so the raw count never has to
  // fit in a double (it would overflow past ~340 signals).
  return mgr_.sat_count(set, mgr_.num_vars(),
                        2 * static_cast<std::int64_t>(num_signals()));
}

}  // namespace xatpg
