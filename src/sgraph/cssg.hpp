// Confluent Stable State Graph (§4): the synchronous FSM abstraction of an
// asynchronous circuit under test.
//
// Pipeline (all symbolic, over the SymbolicEncoding's three variable groups):
//   1. Transition relations:  R_delta (one excited gate fires; stable states
//      self-loop) and R_I (any non-empty set of primary inputs flips on a
//      stable state) — §3.1/§3.2.
//   2. TCSG reachability from the reset states via R = R_I ∪ R_delta.
//   3. TCR_k: pairs (s, s') with s stable/reachable and s' reached from s by
//      one input pattern followed by at most k gate transitions (§4.2).
//      Because stable states self-loop in R_delta, the k-step frontier
//      contains every settled outcome plus any still-unstable snapshot.
//   4. CSSG_k: keep (s, s') where s' is stable and is the *only* k-step
//      outcome with its input pattern — discarding patterns that cause
//      non-confluence (two distinct outcomes) or oscillation/late settling
//      (an unstable k-step sibling).
//
// On top of the relation: onion-ring reachability restricted to CSSG edges
// (only valid vectors may be applied during test), justification sequence
// extraction, and an explicit graph for random TPG / differentiation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sgraph/encoding.hpp"
#include "xatpg/types.hpp"  // CssgStats (public API type)

namespace xatpg {

struct CssgOptions {
  /// Max gate transitions allowed after an input pattern (the k of TCR_k;
  /// the paper counts the input change itself as one transition — we count
  /// gate transitions only, so our k equals the paper's k minus one).
  std::size_t k = 24;
  VarOrder order = VarOrder::Interleaved;
  /// Dynamic-reordering policy handed to the symbolic encoding (see
  /// SymbolicEncoding: force-enabled for VarOrder::Sifted, passed through
  /// otherwise).  All CSSG artifacts and queries are canonicalized to be
  /// order-independent, so enabling reordering changes node counts and
  /// timing, never results.
  ReorderPolicy reorder{};
  /// Safety limit for explicit state enumeration.
  std::size_t max_explicit_states = 200000;
};

// CssgStats (the Figure-2-style statistics block) is a public API type —
// see xatpg/types.hpp.

/// Explicit (enumerated) CSSG used by random TPG and differentiation.
struct ExplicitCssg {
  struct Edge {
    std::vector<bool> pattern;  ///< input values applied (indexed like inputs())
    std::uint32_t to = 0;       ///< successor state id
  };
  std::vector<std::vector<bool>> states;           ///< full signal vectors
  std::vector<std::vector<Edge>> edges;            ///< per state id
  std::vector<std::uint32_t> reset_ids;            ///< ids of reset states
  std::unordered_map<std::string, std::uint32_t> index;  ///< packed key -> id

  static std::string key(const std::vector<bool>& state);
  std::optional<std::uint32_t> find(const std::vector<bool>& state) const;
};

/// A justification: input vector sequence driving the fault-free circuit
/// from a reset state to a target stable state using only valid vectors.
struct Justification {
  std::vector<bool> reset_state;
  std::vector<std::vector<bool>> vectors;  ///< applied in order
  std::vector<bool> final_state;
};

class Cssg {
 public:
  /// Build the full abstraction.  `reset_states` must be stable states.
  Cssg(const Netlist& netlist, const std::vector<std::vector<bool>>& reset_states,
       const CssgOptions& options = {});

  /// Delta view over a *frozen* Cssg: every symbolic artifact (relations,
  /// reachable sets, rings) is adopted by handle from the base's read-only
  /// arena, and all new nodes produced by queries on this view live in a
  /// private delta arena.  One view per worker thread; the base must be
  /// frozen first (see freeze()) and must outlive every view.
  Cssg(const Cssg& base, BddManager::Delta);

  /// Freeze the underlying BddManager, publishing the abstraction for
  /// delta-view construction.  Forces the lazily-computed artifacts first
  /// (a frozen arena rejects allocation).  After this call the only legal
  /// uses of *this* object are const handle reads and delta-view
  /// construction — run queries on a view instead.
  void freeze();
  [[nodiscard]] bool frozen() const { return enc_.mgr().frozen(); }

  const Netlist& netlist() const { return enc_.netlist(); }
  SymbolicEncoding& encoding() { return enc_; }
  const SymbolicEncoding& encoding() const { return enc_; }
  const CssgOptions& options() const { return options_; }

  // --- symbolic artifacts (cur / (cur,next) variable supports) -------------
  const Bdd& r_delta() const { return r_delta_; }
  const Bdd& r_input() const { return r_input_; }
  const Bdd& reachable() const { return reachable_; }         ///< TCSG states
  const Bdd& stable_reachable() const { return stable_reachable_; }
  const Bdd& tcr() const { return tcr_; }                     ///< TCR_k
  const Bdd& relation() const { return cssg_; }               ///< CSSG_k
  /// States reachable from reset using valid vectors only; rings()[i] is the
  /// onion ring at distance i (ring 0 = reset states).
  const Bdd& cssg_reachable() const { return cssg_reachable_; }
  const std::vector<Bdd>& rings() const { return rings_; }

  /// Every state the circuit can pass through during a legal test session:
  /// CSSG-reachable stable states plus all transient states of valid-vector
  /// settlings.  A signal constant across this set can never be excited by
  /// any test — the basis of a-priori undetectable-fault classification
  /// (the §6 "finding out a priori undetectable faults" improvement).
  /// Computed lazily on first use.
  const Bdd& test_mode_reachable() const;

  const CssgStats& stats() const { return stats_; }

  // --- queries ---------------------------------------------------------------
  // All queries are `const` in the same logical sense as SymbolicEncoding's:
  // results depend only on the constructed abstraction, while BDD caches
  // mutate underneath.  They are NOT concurrency-safe — one thread per Cssg
  // (the fault-parallel engine builds one shard per worker).
  /// Successor states (over cur) of `states` (over cur) via CSSG edges.
  Bdd image(const Bdd& states) const;
  /// Predecessor states of `states` via CSSG edges.
  Bdd preimage(const Bdd& states) const;

  /// Shortest valid-vector sequence from a reset state to any state in
  /// `targets` (a cur-set); nullopt if unreachable via valid vectors.
  std::optional<Justification> justify(const Bdd& targets) const;

  /// Enumerate the explicit CSSG reachable from the reset states.
  ExplicitCssg extract_explicit() const;

  /// Graphviz dump of the explicit CSSG (stable states and valid vectors).
  std::string to_dot() const;

 private:
  void build_relations();
  void traverse();
  void build_tcr_and_prune();
  void build_rings();
  std::vector<bool> input_values_of(const std::vector<bool>& state) const;

  SymbolicEncoding enc_;
  CssgOptions options_;
  Bdd r_delta_, r_input_;
  Bdd reachable_, stable_reachable_;
  Bdd tcr_, cssg_;
  Bdd cssg_reachable_;
  std::vector<Bdd> rings_;
  Bdd reset_set_;
  mutable Bdd test_mode_reachable_;
  mutable bool test_mode_reachable_built_ = false;
  CssgStats stats_;
};

}  // namespace xatpg
