// Symbolic state encoding of an asynchronous circuit (§3.1 of the paper).
//
// The state of an asynchronous circuit is the binary vector of *all* its
// signals — primary inputs and gate outputs alike (feedback loops are not
// cut by clocked flip-flops).  Three BDD variable groups encode a state
// relation: present-state (cur), next-state (next), and an auxiliary group
// (aux) used as the middle variable set when composing relations (TCR_k)
// and as the "sibling final state" set when pruning non-confluence.
//
// The group/variable interleaving is selectable — the paper lists BDD
// variable ordering as the main lever on 3-phase ATPG cost (§6), and
// bench_ablation_ordering measures exactly this choice.  On top of the
// static choices, the BDD kernel supports dynamic (Rudell sifting)
// reordering: VarOrder::Sifted starts from the interleaved layout and lets
// the manager re-sort as structures grow.  The encoding declares each
// signal's (cur, next, aux) triple as one sifting GROUP, so reordering
// moves whole signals: the triples stay adjacent, which keeps the
// cur<->next/aux renaming permutations local and the quantification cubes
// compact.  All queries below are canonicalized to be independent of the
// current variable order (states enumerate in lexicographic signal order,
// picks return the lexicographically smallest member), so everything built
// on the encoding — CSSG, justification, the ATPG engine — produces
// identical results whichever order the manager currently holds.
#pragma once

#include <cstdint>
#include <vector>

#include "bdd/bdd.hpp"
#include "netlist/netlist.hpp"
#include "xatpg/options.hpp"  // VarOrder (public API type)

namespace xatpg {

/// Owns the BddManager and the variable layout for one netlist.
///
/// Every query below is `const`: they are logically read-only (the encoding's
/// observable artifacts never change after construction), even though the
/// underlying BddManager mutates its unique table, computed cache and memo
/// caches internally — hence the mutable members.  `const` here means
/// "logically read-only", NOT "safe to call concurrently": the manager's
/// thread-safety contract (one thread per manager, see bdd/bdd.hpp) still
/// applies.  Cross-thread users shard — one SymbolicEncoding per worker.
class SymbolicEncoding {
 public:
  /// `reorder` configures dynamic sifting on the underlying manager.  For
  /// VarOrder::Sifted the policy is force-enabled (with its defaults unless
  /// the caller tuned them); for the static orders it is passed through
  /// verbatim, so any layout can opt into reordering.  Interleaved-family
  /// layouts (Interleaved / ReverseInterleaved / Sifted) register each
  /// signal's (cur, next, aux) triple as a sifting group; Blocked cannot
  /// (the triple is not level-adjacent) and sifts single variables.
  SymbolicEncoding(const Netlist& netlist,
                   VarOrder order = VarOrder::Interleaved,
                   const ReorderPolicy& reorder = {});

  /// Delta view over a *frozen* encoding: shares the base's netlist,
  /// variable layout, permutations and (read-only) node arena, but every
  /// new BDD node this view creates goes into a private delta arena (see
  /// BddManager's base/delta layering).  The base's cached artifacts
  /// (targets, stable predicate) are adopted by handle, so the view starts
  /// warm without copying a single node.  One view per worker thread; the
  /// base must outlive every view and must already be frozen.
  SymbolicEncoding(const SymbolicEncoding& base, BddManager::Delta);

  const Netlist& netlist() const { return *netlist_; }
  BddManager& mgr() const { return mgr_; }
  std::size_t num_signals() const { return netlist_->num_signals(); }

  /// Run one sifting pass now (independent of the auto-trigger policy).
  ReorderStats sift_now() const { return mgr_.sift(); }

  std::uint32_t cur_var(SignalId s) const { return cur_vars_[s]; }
  std::uint32_t next_var(SignalId s) const { return next_vars_[s]; }
  std::uint32_t aux_var(SignalId s) const { return aux_vars_[s]; }

  /// Positive literal of signal s in each group.
  Bdd cur(SignalId s) const { return mgr_.var(cur_vars_[s]); }
  Bdd next(SignalId s) const { return mgr_.var(next_vars_[s]); }
  Bdd aux(SignalId s) const { return mgr_.var(aux_vars_[s]); }

  /// Quantification cubes per group.
  Bdd cur_cube() const { return mgr_.make_cube(cur_vars_); }
  Bdd next_cube() const { return mgr_.make_cube(next_vars_); }
  Bdd aux_cube() const { return mgr_.make_cube(aux_vars_); }

  /// Group renamings (cur<->next, next->aux, cur->aux; other groups fixed).
  Bdd cur_to_next(const Bdd& f) const { return mgr_.permute(f, perm_cur_next_); }
  Bdd next_to_cur(const Bdd& f) const { return mgr_.permute(f, perm_cur_next_); }
  Bdd next_to_aux(const Bdd& f) const { return mgr_.permute(f, perm_next_aux_); }
  Bdd aux_to_next(const Bdd& f) const { return mgr_.permute(f, perm_next_aux_); }
  Bdd cur_to_aux(const Bdd& f) const { return mgr_.permute(f, perm_cur_aux_); }

  /// Minterm of a complete state over the chosen group's variables.
  Bdd state_minterm_cur(const std::vector<bool>& state) const;
  Bdd state_minterm_next(const std::vector<bool>& state) const;

  /// Pick one complete state from a non-empty set over cur variables: the
  /// lexicographically smallest member (by signal index).  Canonical — the
  /// result does not depend on the manager's current variable order, which
  /// keeps justification sequences (and thus ATPG results) identical across
  /// static layouts and dynamic reordering.
  std::vector<bool> pick_state_cur(const Bdd& set) const;

  /// Enumerate all complete states in a set over cur (or next) variables,
  /// in lexicographic signal order — again canonical under reordering (the
  /// explicit CSSG's state ids and edge order inherit this determinism).
  std::vector<std::vector<bool>> all_states_cur(
      const Bdd& set, std::size_t limit = 1u << 20) const;
  std::vector<std::vector<bool>> all_states_next(
      const Bdd& set, std::size_t limit = 1u << 20) const;

  /// Target (settled) value of gate s as a function of cur variables; for
  /// state-holding gates this includes the gate's own present value.
  Bdd target(SignalId s) const;

  /// Predicate over cur: every gate output equals its target (§3.1's
  /// "stable state").
  Bdd stable() const;

  /// cur(s) XNOR next(s).
  Bdd eq_cur_next(SignalId s) const;

  /// Number of satisfying states of a cur-set (each state counted once).
  double count_states_cur(const Bdd& set) const;

 private:
  void build_layout(VarOrder order);
  std::vector<bool> reorder_by_level(const std::vector<std::uint32_t>& vars,
                                     const std::vector<bool>& by_signal) const;

  const Netlist* netlist_;
  mutable BddManager mgr_;
  /// True when cur_vars_ ascends with the signal index, i.e. the creation
  /// order already enumerates cur variables in signal order — then, as long
  /// as the manager has never swapped levels, a raw BDD descent picks the
  /// same lexicographic minimum the canonical cofactor loop would.
  bool pick_descent_is_canonical_ = false;
  std::vector<std::uint32_t> cur_vars_, next_vars_, aux_vars_;
  std::vector<std::uint32_t> perm_cur_next_, perm_next_aux_, perm_cur_aux_;
  mutable std::vector<Bdd> target_cache_;
  mutable Bdd stable_cache_;
  mutable bool stable_built_ = false;
};

}  // namespace xatpg
