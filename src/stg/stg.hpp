// Signal Transition Graphs: the specification formalism from which both
// benchmark suites are synthesized (the paper's circuits were produced by
// Petrify and SIS "from the same specifications").
//
// An STG is a Petri net whose transitions are labeled with signal edges
// (a+, a-).  The token game expands it into a State Graph (SG) whose states
// carry binary signal codes; the SG is the input to src/synth, which derives
// next-state functions and maps them to gate-level netlists.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace xatpg {

enum class SignalKind : std::uint8_t { Input, Output, Internal };

/// Labeled Petri net with single-weight arcs.
class Stg {
 public:
  explicit Stg(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Declare a signal with its initial value; returns signal index.
  std::uint32_t add_signal(const std::string& name, SignalKind kind,
                           bool initial_value);

  /// Add a transition labeled `signal`+/-; returns transition index.
  std::uint32_t add_transition(std::uint32_t signal, bool rising);

  /// Add an explicit place with an initial marking; returns place index.
  std::uint32_t add_place(int tokens = 0);
  void connect_tp(std::uint32_t transition, std::uint32_t place);
  void connect_pt(std::uint32_t place, std::uint32_t transition);

  /// Convenience: causal arc t_from -> t_to through a fresh implicit place.
  void arc(std::uint32_t t_from, std::uint32_t t_to, int tokens = 0);

  struct Signal {
    std::string name;
    SignalKind kind;
    bool initial_value;
  };
  struct Transition {
    std::uint32_t signal;
    bool rising;
    std::vector<std::uint32_t> pre, post;  // place indices
  };

  std::size_t num_signals() const { return signals_.size(); }
  std::size_t num_transitions() const { return transitions_.size(); }
  std::size_t num_places() const { return places_.size(); }
  const Signal& signal(std::uint32_t s) const { return signals_[s]; }
  const Transition& transition(std::uint32_t t) const { return transitions_[t]; }
  int initial_tokens(std::uint32_t p) const { return places_[p]; }

  /// Label like "req+" / "ack-".
  std::string transition_label(std::uint32_t t) const;

 private:
  std::string name_;
  std::vector<Signal> signals_;
  std::vector<Transition> transitions_;
  std::vector<int> places_;  // initial marking
};

/// Explicit state graph produced by the token game.  Owns a copy of its Stg
/// so callers may pass temporaries to expand_stg.
struct StateGraph {
  struct Edge {
    std::uint32_t transition;
    std::uint32_t to;
  };
  std::shared_ptr<const Stg> owner;
  const Stg* stg = nullptr;
  std::vector<std::vector<bool>> codes;     ///< per state: signal values
  std::vector<std::vector<Edge>> edges;     ///< per state
  std::vector<std::vector<bool>> excited;   ///< per state, per signal
  std::uint32_t initial = 0;

  std::size_t num_states() const { return codes.size(); }

  /// Next-state function value of `signal` in `state`: code XOR excited.
  bool next_value(std::uint32_t state, std::uint32_t signal) const {
    return codes[state][signal] ^ excited[state][signal];
  }

  /// States where no non-input signal is excited (candidate reset states).
  std::vector<std::uint32_t> quiescent_states() const;
};

/// Expand the token game (BFS).  Throws CheckError on inconsistent labeling
/// (a+ enabled while a=1), unbounded nets, or state explosion past the cap.
StateGraph expand_stg(const Stg& stg, std::size_t max_states = 1u << 20);

/// Complete State Coding check: two states with equal codes must agree on
/// the excitation of every non-input signal.  Returns human-readable
/// violation descriptions (empty = CSC holds and synthesis is possible).
std::vector<std::string> csc_violations(const StateGraph& sg);

/// Graphviz dump of the state graph.
std::string state_graph_to_dot(const StateGraph& sg);

}  // namespace xatpg
