#include "stg/stg.hpp"

#include <map>
#include <sstream>

namespace xatpg {

std::uint32_t Stg::add_signal(const std::string& name, SignalKind kind,
                              bool initial_value) {
  for (const Signal& s : signals_)
    XATPG_CHECK_MSG(s.name != name, "duplicate signal '" << name << "'");
  signals_.push_back(Signal{name, kind, initial_value});
  return static_cast<std::uint32_t>(signals_.size()) - 1;
}

std::uint32_t Stg::add_transition(std::uint32_t signal, bool rising) {
  XATPG_CHECK(signal < signals_.size());
  transitions_.push_back(Transition{signal, rising, {}, {}});
  return static_cast<std::uint32_t>(transitions_.size()) - 1;
}

std::uint32_t Stg::add_place(int tokens) {
  XATPG_CHECK(tokens >= 0);
  places_.push_back(tokens);
  return static_cast<std::uint32_t>(places_.size()) - 1;
}

void Stg::connect_tp(std::uint32_t transition, std::uint32_t place) {
  XATPG_CHECK(transition < transitions_.size() && place < places_.size());
  transitions_[transition].post.push_back(place);
}

void Stg::connect_pt(std::uint32_t place, std::uint32_t transition) {
  XATPG_CHECK(transition < transitions_.size() && place < places_.size());
  transitions_[transition].pre.push_back(place);
}

void Stg::arc(std::uint32_t t_from, std::uint32_t t_to, int tokens) {
  const std::uint32_t p = add_place(tokens);
  connect_tp(t_from, p);
  connect_pt(p, t_to);
}

std::string Stg::transition_label(std::uint32_t t) const {
  const Transition& tr = transitions_[t];
  return signals_[tr.signal].name + (tr.rising ? "+" : "-");
}

std::vector<std::uint32_t> StateGraph::quiescent_states() const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t st = 0; st < num_states(); ++st) {
    bool quiet = true;
    for (std::uint32_t sig = 0; sig < stg->num_signals(); ++sig) {
      if (stg->signal(sig).kind != SignalKind::Input && excited[st][sig]) {
        quiet = false;
        break;
      }
    }
    if (quiet) out.push_back(st);
  }
  return out;
}

StateGraph expand_stg(const Stg& stg, std::size_t max_states) {
  StateGraph sg;
  sg.owner = std::make_shared<Stg>(stg);
  sg.stg = sg.owner.get();

  using Marking = std::vector<int>;
  struct Key {
    Marking marking;
    std::vector<bool> code;
    bool operator<(const Key& o) const {
      if (marking != o.marking) return marking < o.marking;
      return code < o.code;
    }
  };

  Marking initial_marking(stg.num_places());
  for (std::uint32_t p = 0; p < stg.num_places(); ++p)
    initial_marking[p] = stg.initial_tokens(p);
  std::vector<bool> initial_code(stg.num_signals());
  for (std::uint32_t s = 0; s < stg.num_signals(); ++s)
    initial_code[s] = stg.signal(s).initial_value;

  std::map<Key, std::uint32_t> ids;
  std::vector<Marking> markings;
  const auto intern = [&](const Marking& m, const std::vector<bool>& code) {
    const Key key{m, code};
    auto it = ids.find(key);
    if (it != ids.end()) return std::make_pair(it->second, false);
    XATPG_CHECK_MSG(sg.codes.size() < max_states,
                    "STG '" << stg.name() << "': state explosion (> "
                            << max_states << " states)");
    const auto id = static_cast<std::uint32_t>(sg.codes.size());
    ids.emplace(key, id);
    sg.codes.push_back(code);
    sg.edges.emplace_back();
    sg.excited.emplace_back(stg.num_signals(), false);
    markings.push_back(m);
    return std::make_pair(id, true);
  };

  sg.initial = intern(initial_marking, initial_code).first;
  std::vector<std::uint32_t> worklist{sg.initial};
  while (!worklist.empty()) {
    const std::uint32_t id = worklist.back();
    worklist.pop_back();
    const Marking marking = markings[id];  // copy: vectors grow below
    const std::vector<bool> code = sg.codes[id];
    for (std::uint32_t t = 0; t < stg.num_transitions(); ++t) {
      const Stg::Transition& tr = stg.transition(t);
      bool enabled = !tr.pre.empty();
      for (const std::uint32_t p : tr.pre)
        enabled = enabled && marking[p] > 0;
      if (!enabled) continue;
      XATPG_CHECK_MSG(
          code[tr.signal] != tr.rising,
          "STG '" << stg.name() << "': inconsistent labeling — "
                  << stg.transition_label(t) << " enabled in a state where "
                  << stg.signal(tr.signal).name << " is already "
                  << (tr.rising ? 1 : 0));
      sg.excited[id][tr.signal] = true;

      Marking next = marking;
      for (const std::uint32_t p : tr.pre) --next[p];
      for (const std::uint32_t p : tr.post) {
        ++next[p];
        XATPG_CHECK_MSG(next[p] <= 8, "STG '" << stg.name()
                                              << "': place unbounded?");
      }
      std::vector<bool> next_code = code;
      next_code[tr.signal] = tr.rising;
      const auto [to, fresh] = intern(next, next_code);
      sg.edges[id].push_back(StateGraph::Edge{t, to});
      if (fresh) worklist.push_back(to);
    }
  }
  return sg;
}

std::vector<std::string> csc_violations(const StateGraph& sg) {
  std::vector<std::string> out;
  std::map<std::vector<bool>, std::uint32_t> first_with_code;
  for (std::uint32_t st = 0; st < sg.num_states(); ++st) {
    auto [it, fresh] = first_with_code.emplace(sg.codes[st], st);
    if (fresh) continue;
    const std::uint32_t other = it->second;
    for (std::uint32_t sig = 0; sig < sg.stg->num_signals(); ++sig) {
      if (sg.stg->signal(sig).kind == SignalKind::Input) continue;
      if (sg.excited[st][sig] != sg.excited[other][sig]) {
        std::ostringstream os;
        os << "CSC violation on signal '" << sg.stg->signal(sig).name
           << "': states " << other << " and " << st
           << " share a code but differ in excitation";
        out.push_back(os.str());
      }
    }
  }
  return out;
}

std::string state_graph_to_dot(const StateGraph& sg) {
  std::ostringstream os;
  os << "digraph sg {\n  rankdir=LR;\n";
  for (std::uint32_t st = 0; st < sg.num_states(); ++st) {
    os << "  s" << st << " [label=\"";
    for (const bool b : sg.codes[st]) os << (b ? '1' : '0');
    os << "\"" << (st == sg.initial ? " shape=doublecircle" : "") << "];\n";
  }
  for (std::uint32_t st = 0; st < sg.num_states(); ++st)
    for (const auto& e : sg.edges[st])
      os << "  s" << st << " -> s" << e.to << " [label=\""
         << sg.stg->transition_label(e.transition) << "\"];\n";
  os << "}\n";
  return os.str();
}

}  // namespace xatpg
