// Word-parallel two-rail ternary fault simulation (§5.4): 64 faulty circuits
// are simulated per pass, one per bit lane.  Each signal carries two 64-bit
// rails (r1 = "can be 1", r0 = "can be 0"); (1,0)=1, (0,1)=0, (1,1)=Φ.
// Two-rail gate evaluation *is* the ternary extension of the gate function,
// so Eichelberger's algorithms run unchanged across all lanes at once —
// this combines the "parallel" [Seshu] and "ternary" [Eichelberger]
// simulation techniques exactly as the paper prescribes.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/ternary.hpp"

namespace xatpg {

/// Two-rail ternary word: one value per bit lane.
struct Rail {
  std::uint64_t r1 = 0;  ///< lane can be 1
  std::uint64_t r0 = 0;  ///< lane can be 0

  bool operator==(const Rail&) const = default;
};

inline Rail rail_all(Ternary t) {
  switch (t) {
    case Ternary::V0: return Rail{0, ~0ull};
    case Ternary::V1: return Rail{~0ull, 0};
    default: return Rail{~0ull, ~0ull};
  }
}

/// Ternary value of one lane.
Ternary rail_lane(const Rail& r, unsigned lane);
/// Set one lane to a ternary value.
void set_rail_lane(Rail& r, unsigned lane, Ternary t);

/// Algebra instance for eval_gate over Rail words.
struct RailOps {
  Rail zero() const { return Rail{0, ~0ull}; }
  Rail one() const { return Rail{~0ull, 0}; }
  Rail and_(const Rail& a, const Rail& b) const {
    return Rail{a.r1 & b.r1, a.r0 | b.r0};
  }
  Rail or_(const Rail& a, const Rail& b) const {
    return Rail{a.r1 | b.r1, a.r0 & b.r0};
  }
  Rail not_(const Rail& a) const { return Rail{a.r0, a.r1}; }
};

/// A stuck-at fault injected into one or more lanes.
struct LaneInjection {
  enum class Site : std::uint8_t {
    GatePin,       ///< the connection into fanin position `pin` of `gate`
    SignalOutput,  ///< the output of gate `gate`
  };
  Site site = Site::GatePin;
  SignalId gate = kNoSignal;
  std::size_t pin = 0;
  bool stuck_value = false;
  std::uint64_t lanes = 0;  ///< bit mask of affected lanes
};

/// 64-lane parallel ternary simulator with per-lane fault injection.
///
/// Typical use: lane 0 carries the fault-free circuit, lanes 1..63 carry one
/// faulty circuit each; after settle(), lanes whose primary output is
/// definite and differs from lane 0's definite value have detected their
/// fault.
class ParallelTernarySim {
 public:
  ParallelTernarySim(const Netlist& netlist,
                     std::vector<LaneInjection> injections);

  /// Load the same starting boolean state into every lane.
  void load_state(const std::vector<bool>& state);
  /// Load a per-lane ternary state.
  void load_rails(const std::vector<Rail>& rails);

  /// Apply an input vector to all lanes and settle (Algorithm A + B).
  void settle(const std::vector<bool>& input_values);

  const std::vector<Rail>& rails() const { return state_; }
  Ternary value(SignalId s, unsigned lane) const {
    return rail_lane(state_[s], lane);
  }

  /// Lanes (mask) in which signal s currently has the definite value v.
  std::uint64_t lanes_definite(SignalId s, bool v) const;

  /// Lanes in which any signal is Φ (conservatively invalid lanes).
  std::uint64_t lanes_with_unknown() const;

  const Netlist& netlist() const { return *netlist_; }

 private:
  Rail eval_target(SignalId s) const;
  void inject_output_faults();

  const Netlist* netlist_;
  std::vector<LaneInjection> injections_;
  // Per-gate pin injections resolved for fast lookup: pin_faults_[g] lists
  // injections on gate g's pins.
  std::vector<std::vector<std::uint32_t>> pin_faults_;
  std::vector<std::vector<std::uint32_t>> output_faults_;
  std::vector<Rail> state_;
};

}  // namespace xatpg
