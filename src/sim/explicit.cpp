#include "sim/explicit.hpp"

#include "util/check.hpp"

namespace xatpg {

std::vector<SignalId> excited_gates(const Netlist& netlist,
                                    const std::vector<bool>& state) {
  std::vector<SignalId> out;
  for (SignalId s = 0; s < netlist.num_signals(); ++s) {
    if (netlist.is_input(s)) continue;
    if (!netlist.is_gate_stable(s, state)) out.push_back(s);
  }
  return out;
}

ExploreResult explore_settling(const Netlist& netlist,
                               const std::vector<bool>& stable_from,
                               const std::vector<bool>& input_values,
                               std::size_t max_transitions) {
  XATPG_CHECK(stable_from.size() == netlist.num_signals());
  XATPG_CHECK(input_values.size() == netlist.inputs().size());

  ExploreResult result;
  std::vector<bool> start = stable_from;
  for (std::size_t i = 0; i < input_values.size(); ++i)
    start[netlist.inputs()[i]] = input_values[i];

  // Level-synchronous exploration: level d holds the set of *unstable*
  // states reachable in exactly d gate transitions after the input flip;
  // stable states are recorded and not expanded (they self-loop in R_delta).
  // This matches the TCR_k semantics exactly: the pattern is valid iff one
  // stable state is reachable and no trajectory is still unstable after
  // max_transitions steps.
  std::set<std::vector<bool>> seen_states;  // statistics only
  std::set<std::vector<bool>> level{start};
  std::size_t depth = 0;
  while (!level.empty()) {
    std::set<std::vector<bool>> next_level;
    for (const std::vector<bool>& state : level) {
      seen_states.insert(state);
      const auto excited = excited_gates(netlist, state);
      if (excited.empty()) {
        result.stable_states.insert(state);
        continue;
      }
      if (depth == max_transitions) {
        // An unstable state survives at the transition bound: oscillation
        // or a settle time longer than the test cycle.
        result.exceeded_bound = true;
        continue;
      }
      for (const SignalId g : excited) {
        std::vector<bool> succ = state;
        succ[g] = !succ[g];
        next_level.insert(std::move(succ));
      }
    }
    if (depth == max_transitions) break;
    result.longest_path = depth;
    level = std::move(next_level);
    ++depth;
  }
  result.states_visited = seen_states.size();
  return result;
}

std::set<std::vector<bool>> explicit_stable_reachable(
    const Netlist& netlist, const std::vector<bool>& reset_state,
    std::size_t max_transitions) {
  XATPG_CHECK_MSG(netlist.is_stable_state(reset_state),
                  "reset state must be stable");
  const std::size_t num_inputs = netlist.inputs().size();
  XATPG_CHECK_MSG(num_inputs <= 16, "too many inputs for explicit exploration");

  std::set<std::vector<bool>> stable_seen{reset_state};
  std::vector<std::vector<bool>> worklist{reset_state};
  while (!worklist.empty()) {
    const std::vector<bool> state = worklist.back();
    worklist.pop_back();
    for (std::uint64_t pattern = 0; pattern < (1ull << num_inputs); ++pattern) {
      std::vector<bool> input_values(num_inputs);
      bool same = true;
      for (std::size_t i = 0; i < num_inputs; ++i) {
        input_values[i] = (pattern >> i) & 1;
        same = same && (input_values[i] == state[netlist.inputs()[i]]);
      }
      if (same) continue;  // R_I requires at least one input to change
      const ExploreResult explored =
          explore_settling(netlist, state, input_values, max_transitions);
      for (const std::vector<bool>& st : explored.stable_states) {
        if (stable_seen.insert(st).second) worklist.push_back(st);
      }
    }
  }
  return stable_seen;
}

}  // namespace xatpg
