#include "sim/ternary.hpp"

#include "util/check.hpp"

namespace xatpg {

Ternary ternary_lub(Ternary a, Ternary b) {
  if (a == b) return a;
  return Ternary::X;
}

Ternary ternary_and(Ternary a, Ternary b) {
  if (a == Ternary::V0 || b == Ternary::V0) return Ternary::V0;
  if (a == Ternary::V1 && b == Ternary::V1) return Ternary::V1;
  return Ternary::X;
}

Ternary ternary_or(Ternary a, Ternary b) {
  if (a == Ternary::V1 || b == Ternary::V1) return Ternary::V1;
  if (a == Ternary::V0 && b == Ternary::V0) return Ternary::V0;
  return Ternary::X;
}

Ternary ternary_not(Ternary a) {
  if (a == Ternary::X) return Ternary::X;
  return a == Ternary::V0 ? Ternary::V1 : Ternary::V0;
}

std::vector<bool> SettleResult::final_state() const {
  XATPG_CHECK_MSG(confluent, "final_state() on a non-confluent settlement");
  std::vector<bool> out;
  out.reserve(state.size());
  for (const Ternary t : state) out.push_back(t == Ternary::V1);
  return out;
}

std::size_t SettleResult::num_unknown() const {
  std::size_t n = 0;
  for (const Ternary t : state)
    if (t == Ternary::X) ++n;
  return n;
}

TernarySim::TernarySim(const Netlist& netlist) : netlist_(&netlist) {}

Ternary TernarySim::eval_gate_ternary(SignalId s,
                                      const std::vector<Ternary>& state) const {
  const Gate& g = netlist_->gate(s);
  std::vector<Ternary> fanin_vals;
  fanin_vals.reserve(g.fanins.size());
  for (const SignalId f : g.fanins) fanin_vals.push_back(state[f]);
  return eval_gate(g, fanin_vals, state[s], TernaryOps{});
}

void TernarySim::algorithm_a(std::vector<Ternary>& state) const {
  // Monotone non-decreasing in the information order; the fixpoint is
  // reached in at most num_signals ascents, each pass doing n evaluations
  // (the O(n^2) bound cited in the paper from [6]).
  bool changed = true;
  while (changed) {
    changed = false;
    for (SignalId s = 0; s < netlist_->num_signals(); ++s) {
      if (netlist_->is_input(s)) continue;  // held by the environment
      const Ternary target = eval_gate_ternary(s, state);
      const Ternary next = ternary_lub(state[s], target);
      if (next != state[s]) {
        state[s] = next;
        changed = true;
      }
    }
  }
}

void TernarySim::algorithm_b(std::vector<Ternary>& state) const {
  // Started from the Algorithm A fixpoint this is monotone non-increasing,
  // so it converges; the cap is a defensive bound only.
  const std::size_t cap = 4 * netlist_->num_signals() + 8;
  for (std::size_t pass = 0; pass < cap; ++pass) {
    bool changed = false;
    for (SignalId s = 0; s < netlist_->num_signals(); ++s) {
      if (netlist_->is_input(s)) continue;
      const Ternary target = eval_gate_ternary(s, state);
      if (target != state[s]) {
        state[s] = target;
        changed = true;
      }
    }
    if (!changed) return;
  }
  XATPG_CHECK_MSG(false, "Algorithm B did not converge (internal error)");
}

SettleResult TernarySim::settle(const std::vector<bool>& from,
                                const std::vector<bool>& input_values) const {
  std::vector<Ternary> state;
  state.reserve(from.size());
  for (const bool b : from) state.push_back(to_ternary(b));
  return settle(state, input_values);
}

SettleResult TernarySim::settle(const std::vector<Ternary>& from,
                                const std::vector<bool>& input_values) const {
  XATPG_CHECK(from.size() == netlist_->num_signals());
  XATPG_CHECK(input_values.size() == netlist_->inputs().size());
  SettleResult result;
  result.state = from;
  // Drive the primary inputs.  Inputs that change are set directly to the
  // new value: per the paper's model an input buffer's delay is the input
  // gate itself, and the test-cycle relation R_I flips inputs atomically on
  // a stable state before any gate reacts.
  for (std::size_t i = 0; i < input_values.size(); ++i)
    result.state[netlist_->inputs()[i]] = to_ternary(input_values[i]);

  algorithm_a(result.state);
  algorithm_b(result.state);
  result.confluent = true;
  for (const Ternary t : result.state)
    if (t == Ternary::X) {
      result.confluent = false;
      break;
    }
  return result;
}

bool settle_to_stable(const Netlist& netlist, std::vector<bool>& state) {
  TernarySim sim(netlist);
  std::vector<bool> inputs;
  inputs.reserve(netlist.inputs().size());
  for (const SignalId s : netlist.inputs()) inputs.push_back(state[s]);
  const SettleResult result = sim.settle(state, inputs);
  if (!result.confluent) return false;
  state = result.final_state();
  return true;
}

}  // namespace xatpg
