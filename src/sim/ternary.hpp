// Ternary (0/1/Φ) simulation after Eichelberger, as used in §5.4 of the
// paper: Algorithm A propagates uncertainty (least-upper-bound in the
// information order), Algorithm B re-evaluates to resolve signals back to
// definite values.  If the B fixpoint contains a Φ, the applied input vector
// causes a critical race or an oscillation — a conservative but safe
// verdict.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace xatpg {

/// Ternary signal value.  X is Eichelberger's Φ: "neither 0 nor 1 for sure".
enum class Ternary : std::uint8_t { V0 = 0, V1 = 1, X = 2 };

inline Ternary to_ternary(bool b) { return b ? Ternary::V1 : Ternary::V0; }

/// Least upper bound in the information order (0,1 ⊑ X).
Ternary ternary_lub(Ternary a, Ternary b);

Ternary ternary_and(Ternary a, Ternary b);
Ternary ternary_or(Ternary a, Ternary b);
Ternary ternary_not(Ternary a);

/// Algebra instance for eval_gate over Ternary values.
struct TernaryOps {
  Ternary zero() const { return Ternary::V0; }
  Ternary one() const { return Ternary::V1; }
  Ternary and_(Ternary a, Ternary b) const { return ternary_and(a, b); }
  Ternary or_(Ternary a, Ternary b) const { return ternary_or(a, b); }
  Ternary not_(Ternary a) const { return ternary_not(a); }
};

/// Outcome of applying one input vector to a stable state.
struct SettleResult {
  /// True iff every signal settled to a definite value: the circuit has a
  /// unique final stable state under the unbounded gate-delay model.
  bool confluent = false;
  /// Final ternary state (meaningful either way; Φ marks racing signals).
  std::vector<Ternary> state;

  /// Final state as booleans; precondition: confluent.
  std::vector<bool> final_state() const;
  /// Number of signals left at Φ.
  std::size_t num_unknown() const;
};

/// Scalar ternary simulator over a netlist.
class TernarySim {
 public:
  explicit TernarySim(const Netlist& netlist);

  /// Apply `input_values` (indexed like netlist.inputs()) to the stable
  /// state `from` and run Algorithm A then Algorithm B to the fixpoint.
  SettleResult settle(const std::vector<bool>& from,
                      const std::vector<bool>& input_values) const;

  /// Ternary-state variant (used when chaining vectors on a faulty circuit
  /// whose state is already partially unknown).
  SettleResult settle(const std::vector<Ternary>& from,
                      const std::vector<bool>& input_values) const;

  /// Evaluate the target (next) value of gate s in a ternary state.
  Ternary eval_gate_ternary(SignalId s, const std::vector<Ternary>& state) const;

  const Netlist& netlist() const { return *netlist_; }

 private:
  /// Algorithm A: x := lub(x, f(x)) to the fixpoint.
  void algorithm_a(std::vector<Ternary>& state) const;
  /// Algorithm B: x := f(x) to the fixpoint.
  void algorithm_b(std::vector<Ternary>& state) const;

  const Netlist* netlist_;
};

/// Find the unique stable state reached from `state` by plain re-evaluation
/// (used to compute reset states of synthesized circuits); returns false if
/// ternary analysis cannot prove a unique settlement.
bool settle_to_stable(const Netlist& netlist, std::vector<bool>& state);

}  // namespace xatpg
