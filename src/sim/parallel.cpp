#include "sim/parallel.hpp"

#include "util/check.hpp"

namespace xatpg {

Ternary rail_lane(const Rail& r, unsigned lane) {
  const bool can1 = (r.r1 >> lane) & 1;
  const bool can0 = (r.r0 >> lane) & 1;
  if (can1 && can0) return Ternary::X;
  if (can1) return Ternary::V1;
  XATPG_CHECK_MSG(can0, "lane has neither rail set");
  return Ternary::V0;
}

void set_rail_lane(Rail& r, unsigned lane, Ternary t) {
  const std::uint64_t bit = 1ull << lane;
  r.r1 &= ~bit;
  r.r0 &= ~bit;
  if (t != Ternary::V0) r.r1 |= bit;
  if (t != Ternary::V1) r.r0 |= bit;
}

namespace {
/// Force the lanes in `mask` of rail r to the definite value v.
inline void force_lanes(Rail& r, std::uint64_t mask, bool v) {
  if (v) {
    r.r1 |= mask;
    r.r0 &= ~mask;
  } else {
    r.r0 |= mask;
    r.r1 &= ~mask;
  }
}
}  // namespace

ParallelTernarySim::ParallelTernarySim(const Netlist& netlist,
                                       std::vector<LaneInjection> injections)
    : netlist_(&netlist), injections_(std::move(injections)) {
  pin_faults_.resize(netlist.num_signals());
  output_faults_.resize(netlist.num_signals());
  for (std::uint32_t i = 0; i < injections_.size(); ++i) {
    const LaneInjection& inj = injections_[i];
    XATPG_CHECK(inj.gate < netlist.num_signals());
    if (inj.site == LaneInjection::Site::GatePin) {
      XATPG_CHECK(inj.pin < netlist.gate(inj.gate).fanins.size());
      pin_faults_[inj.gate].push_back(i);
    } else {
      output_faults_[inj.gate].push_back(i);
    }
  }
  state_.assign(netlist.num_signals(), rail_all(Ternary::V0));
}

void ParallelTernarySim::load_state(const std::vector<bool>& state) {
  XATPG_CHECK(state.size() == netlist_->num_signals());
  for (SignalId s = 0; s < state.size(); ++s)
    state_[s] = rail_all(to_ternary(state[s]));
  inject_output_faults();
}

void ParallelTernarySim::load_rails(const std::vector<Rail>& rails) {
  XATPG_CHECK(rails.size() == netlist_->num_signals());
  state_ = rails;
  inject_output_faults();
}

Rail ParallelTernarySim::eval_target(SignalId s) const {
  const Gate& g = netlist_->gate(s);
  std::vector<Rail> fanin_vals;
  fanin_vals.reserve(g.fanins.size());
  for (const SignalId f : g.fanins) fanin_vals.push_back(state_[f]);
  // Pin-level stuck-at injection: override the faulty lanes of the faulty
  // pin before evaluating the gate function.
  for (const std::uint32_t idx : pin_faults_[s]) {
    const LaneInjection& inj = injections_[idx];
    force_lanes(fanin_vals[inj.pin], inj.lanes, inj.stuck_value);
  }
  Rail target = eval_gate(g, fanin_vals, state_[s], RailOps{});
  // Output stuck-at: the gate output is tied regardless of the function.
  for (const std::uint32_t idx : output_faults_[s]) {
    const LaneInjection& inj = injections_[idx];
    force_lanes(target, inj.lanes, inj.stuck_value);
  }
  return target;
}

void ParallelTernarySim::inject_output_faults() {
  for (SignalId s = 0; s < netlist_->num_signals(); ++s)
    for (const std::uint32_t idx : output_faults_[s]) {
      const LaneInjection& inj = injections_[idx];
      force_lanes(state_[s], inj.lanes, inj.stuck_value);
    }
}

void ParallelTernarySim::settle(const std::vector<bool>& input_values) {
  XATPG_CHECK(input_values.size() == netlist_->inputs().size());
  for (std::size_t i = 0; i < input_values.size(); ++i) {
    SignalId in = netlist_->inputs()[i];
    state_[in] = rail_all(to_ternary(input_values[i]));
    // Output stuck-at faults on an input buffer still pin its value.
    for (const std::uint32_t idx : output_faults_[in]) {
      const LaneInjection& inj = injections_[idx];
      force_lanes(state_[in], inj.lanes, inj.stuck_value);
    }
  }

  // Algorithm A across all lanes: x := lub(x, f(x)); lub is rail-wise OR.
  bool changed = true;
  while (changed) {
    changed = false;
    for (SignalId s = 0; s < netlist_->num_signals(); ++s) {
      if (netlist_->is_input(s)) continue;
      const Rail target = eval_target(s);
      const Rail next{state_[s].r1 | target.r1, state_[s].r0 | target.r0};
      if (!(next == state_[s])) {
        state_[s] = next;
        changed = true;
      }
    }
  }
  // Algorithm B across all lanes: x := f(x).
  const std::size_t cap = 4 * netlist_->num_signals() + 8;
  for (std::size_t pass = 0; pass < cap; ++pass) {
    changed = false;
    for (SignalId s = 0; s < netlist_->num_signals(); ++s) {
      if (netlist_->is_input(s)) continue;
      const Rail target = eval_target(s);
      if (!(target == state_[s])) {
        state_[s] = target;
        changed = true;
      }
    }
    if (!changed) return;
  }
  XATPG_CHECK_MSG(false, "parallel Algorithm B did not converge");
}

std::uint64_t ParallelTernarySim::lanes_definite(SignalId s, bool v) const {
  const Rail& r = state_[s];
  return v ? (r.r1 & ~r.r0) : (r.r0 & ~r.r1);
}

std::uint64_t ParallelTernarySim::lanes_with_unknown() const {
  std::uint64_t mask = 0;
  for (const Rail& r : state_) mask |= (r.r1 & r.r0);
  return mask;
}

}  // namespace xatpg
