// Explicit-state race exploration under the unbounded gate-delay model.
//
// Enumerates *all* interleavings of excited-gate firings after an input
// pattern is applied to a stable state (the "competition between sensitized
// paths" of §2).  Exact but exponential — used as a test oracle for the
// conservative ternary simulator and for cross-validating the symbolic
// TCR_k/CSSG computation, and by bench_fig1 to demonstrate non-confluence
// and oscillation on the paper's Figure 1 circuits.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "netlist/netlist.hpp"

namespace xatpg {

/// Outcome of exhaustive exploration of one (stable state, input pattern).
struct ExploreResult {
  /// All stable states reachable within the transition bound.
  std::set<std::vector<bool>> stable_states;
  /// True if some trajectory of length `max_transitions` ends unstable
  /// (oscillation, or a settle time exceeding the test cycle).
  bool exceeded_bound = false;
  /// Number of distinct states visited.
  std::size_t states_visited = 0;
  /// Length of the longest transition sequence explored (capped).
  std::size_t longest_path = 0;

  /// The pattern is a valid synchronous test vector (§4): exactly one
  /// stable settling state, and every trajectory settles within the bound.
  bool confluent() const {
    return stable_states.size() == 1 && !exceeded_bound;
  }
};

/// Exhaustively explore the settling behavior after flipping the primary
/// inputs of `stable_from` to `input_values`, with at most `max_transitions`
/// gate transitions per trajectory (the k of TCR_k).
ExploreResult explore_settling(const Netlist& netlist,
                               const std::vector<bool>& stable_from,
                               const std::vector<bool>& input_values,
                               std::size_t max_transitions);

/// All excited (unstable) gates in `state`.
std::vector<SignalId> excited_gates(const Netlist& netlist,
                                    const std::vector<bool>& state);

/// Enumerate every stable state of the netlist reachable in test mode from
/// `reset_state` using arbitrary input patterns (explicit TCSG stable-state
/// reachability; oracle for the symbolic traversal).  `max_transitions`
/// bounds each settling; states whose settling exceeds the bound or races
/// still contribute all their reachable stable states, mirroring the TCSG
/// definition.
std::set<std::vector<bool>> explicit_stable_reachable(
    const Netlist& netlist, const std::vector<bool>& reset_state,
    std::size_t max_transitions);

}  // namespace xatpg
