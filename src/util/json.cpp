#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "util/check.hpp"

namespace xatpg::json {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse() {
    const Value value = parse_value();
    skip_ws();
    XATPG_CHECK_MSG(pos_ == text_.size(),
                    "JSON: trailing content at offset " << pos_);
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }
  char peek() {
    skip_ws();
    XATPG_CHECK_MSG(pos_ < text_.size(), "JSON: unexpected end of input");
    return text_[pos_];
  }
  void expect(char c) {
    XATPG_CHECK_MSG(peek() == c, "JSON: expected '" << c << "' at offset "
                                                    << pos_ << ", got '"
                                                    << text_[pos_] << "'");
    ++pos_;
  }
  bool consume_literal(const char* literal) {
    const std::size_t n = std::string(literal).size();
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value() {
    // Recursion depth is attacker-controlled ("[[[[..."): cap it so hostile
    // input gets a CheckError at the Expected<T> boundary instead of blowing
    // the stack.  128 is far beyond any in-tree document (frames nest 3).
    XATPG_CHECK_MSG(depth_ < kMaxDepth,
                    "JSON: nesting deeper than " << kMaxDepth << " levels");
    ++depth_;
    Value value = parse_value_inner();
    --depth_;
    return value;
  }

  Value parse_value_inner() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      Value value;
      value.type = Value::Type::String;
      value.string = parse_string();
      return value;
    }
    Value value;
    if (consume_literal("true")) {
      value.type = Value::Type::Bool;
      value.boolean = true;
      return value;
    }
    if (consume_literal("false")) {
      value.type = Value::Type::Bool;
      return value;
    }
    if (consume_literal("null")) return value;
    return parse_number();
  }

  Value parse_object() {
    Value value;
    value.type = Value::Type::Object;
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      XATPG_CHECK_MSG(peek() == '"',
                      "JSON: expected object key at offset " << pos_);
      std::string key = parse_string();
      expect(':');
      value.object.emplace_back(std::move(key), parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return value;
    }
  }

  Value parse_array() {
    Value value;
    value.type = Value::Type::Array;
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.array.push_back(parse_value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return value;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      XATPG_CHECK_MSG(pos_ < text_.size(), "JSON: unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      XATPG_CHECK_MSG(pos_ < text_.size(), "JSON: unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          XATPG_CHECK_MSG(pos_ + 4 <= text_.size(),
                          "JSON: truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else XATPG_CHECK_MSG(false, "JSON: bad \\u escape digit");
          }
          // Our producers only ever escape control characters; anything else
          // is passed through as a single byte (sufficient in-tree).
          out += static_cast<char>(code & 0xff);
          break;
        }
        default:
          XATPG_CHECK_MSG(false, "JSON: unknown escape '\\" << esc << "'");
      }
    }
  }

  Value parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    XATPG_CHECK_MSG(pos_ > start, "JSON: expected a value at offset " << start);
    Value value;
    value.type = Value::Type::Number;
    try {
      value.number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      XATPG_CHECK_MSG(false, "JSON: malformed number at offset " << start);
    }
    return value;
  }

  static constexpr int kMaxDepth = 128;

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Value parse(const std::string& text) { return Parser(text).parse(); }

double num_field(const Value& object, const char* key, double fallback) {
  const Value* value = object.find(key);
  if (value == nullptr) return fallback;
  XATPG_CHECK_MSG(value->type == Value::Type::Number,
                  "JSON: field '" << key << "' is not a number");
  return value->number;
}

std::size_t size_field(const Value& object, const char* key) {
  const double value = num_field(object, key, 0);
  // 2^53 is the largest double that still lands on every integer; past it
  // the value is lossy as a count, and past 2^64 the size_t cast is UB —
  // so reject, don't cast, anything outside the exact range.
  XATPG_CHECK_MSG(value >= 0 && value <= 9007199254740992.0,
                  "JSON: field '" << key << "' is not a representable count");
  return static_cast<std::size_t>(value);
}

std::string string_field(const Value& object, const char* key) {
  const Value* value = object.find(key);
  if (value == nullptr) return {};
  XATPG_CHECK_MSG(value->type == Value::Type::String,
                  "JSON: field '" << key << "' is not a string");
  return value->string;
}

bool bool_field(const Value& object, const char* key, bool fallback) {
  const Value* value = object.find(key);
  if (value == nullptr) return fallback;
  XATPG_CHECK_MSG(value->type == Value::Type::Bool,
                  "JSON: field '" << key << "' is not a boolean");
  return value->boolean;
}

std::string escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string number(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[64];
  // %.17g is max_digits10 for IEEE-754 double: enough digits that parsing
  // the token reproduces the exact bit pattern (operator<<'s default 6
  // significant digits silently truncated on round-trip).
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

}  // namespace xatpg::json
