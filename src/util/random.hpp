// Deterministic PRNG for reproducible ATPG runs.
//
// xoshiro256** by Blackman & Vigna (public domain reference algorithm),
// re-implemented here so random TPG results are identical across platforms
// and standard-library versions (std::mt19937 ordering of distributions is
// not portable).
#pragma once

#include <cstdint>

namespace xatpg {

/// Small, fast, reproducible 64-bit PRNG (xoshiro256**).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform value in [0, bound) with Lemire rejection; bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform boolean.
  bool flip() { return (next() >> 63) != 0; }

  /// Uniform double in [0, 1).
  double uniform();

 private:
  std::uint64_t s_[4];
};

}  // namespace xatpg
