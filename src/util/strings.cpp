#include "util/strings.hpp"

#include <cctype>

namespace xatpg {

std::vector<std::string> split_ws(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    std::size_t j = i;
    while (j < text.size() && !std::isspace(static_cast<unsigned char>(text[j]))) ++j;
    if (j > i) out.emplace_back(text.substr(i, j - i));
    i = j;
  }
  return out;
}

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

}  // namespace xatpg
