#include "util/log.hpp"

#include <iostream>

namespace xatpg {

namespace {
LogLevel g_level = LogLevel::Warn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

namespace detail {
void log_line(LogLevel level, const std::string& message) {
  std::cerr << "[xatpg:" << level_name(level) << "] " << message << "\n";
}
}  // namespace detail

}  // namespace xatpg
