// Minimal leveled logging to stderr.  Default level is Warn so library code
// is silent inside tests; tools raise it with set_log_level().
#pragma once

#include <sstream>
#include <string>

namespace xatpg {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& message);
}

}  // namespace xatpg

#define XATPG_LOG(level, stream_expr)                                \
  do {                                                                \
    if (static_cast<int>(level) >= static_cast<int>(::xatpg::log_level())) { \
      std::ostringstream xatpg_log_os_;                               \
      xatpg_log_os_ << stream_expr;                                   \
      ::xatpg::detail::log_line(level, xatpg_log_os_.str());          \
    }                                                                 \
  } while (0)

#define XATPG_DEBUG(s) XATPG_LOG(::xatpg::LogLevel::Debug, s)
#define XATPG_INFO(s) XATPG_LOG(::xatpg::LogLevel::Info, s)
#define XATPG_WARN(s) XATPG_LOG(::xatpg::LogLevel::Warn, s)
#define XATPG_ERROR(s) XATPG_LOG(::xatpg::LogLevel::Error, s)
