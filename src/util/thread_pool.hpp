// Minimal fixed-size thread pool for the fault-parallel ATPG engine.
//
// Deliberately simple: tasks are opaque std::function<void()> jobs pushed
// through one mutex-protected queue.  The pool is NOT the scalability
// mechanism — workers pull coarse fault blocks from a StealingWorkQueue
// (util/work_queue.hpp) inside a single long-lived task each, so the pool's
// queue sees O(threads) submissions per ATPG run, never O(faults).
//
// The locking protocol is machine-checked: every field the queue mutex
// guards is declared XATPG_GUARDED_BY(mutex_), and a Clang build with
// -DXATPG_THREAD_SAFETY=ON (-Wthread-safety -Werror) rejects any access
// outside the lock at compile time.  TSan checks the same protocol
// dynamically on the CI sanitizer job; the static pass covers the
// interleavings TSan never executes.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/annotations.hpp"
#include "util/sync.hpp"

namespace xatpg {

class ThreadPool {
 public:
  /// Spawn `num_threads` workers (0 is clamped to 1).
  explicit ThreadPool(std::size_t num_threads);
  /// Drains the queue, then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task.  Tasks must not throw — wrap bodies that can fail and
  /// stash the std::exception_ptr (see AtpgEngine::run).
  void submit(std::function<void()> task) XATPG_EXCLUDES(mutex_);

  /// Block until the queue is empty and every worker is idle.
  void wait_idle() XATPG_EXCLUDES(mutex_);

 private:
  void worker_loop() XATPG_EXCLUDES(mutex_);
  /// True when the queue is drained and no task is running.
  bool idle() const XATPG_REQUIRES(mutex_) {
    return tasks_.empty() && active_ == 0;
  }

  Mutex mutex_;
  std::condition_variable work_cv_;   // signals workers: task or stop
  std::condition_variable idle_cv_;   // signals wait_idle: all drained
  std::deque<std::function<void()>> tasks_ XATPG_GUARDED_BY(mutex_);
  std::size_t active_ XATPG_GUARDED_BY(mutex_) = 0;
  bool stop_ XATPG_GUARDED_BY(mutex_) = false;
  // Written only by the constructor, before any worker can observe the pool;
  // joined by the destructor after stop_ is published under mutex_.
  std::vector<std::thread> workers_;
};

}  // namespace xatpg
