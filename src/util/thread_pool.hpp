// Minimal fixed-size thread pool for the fault-parallel ATPG engine.
//
// Deliberately simple: tasks are opaque std::function<void()> jobs pushed
// through one mutex-protected queue.  The pool is NOT the scalability
// mechanism — workers pull coarse fault blocks from a StealingWorkQueue
// (util/work_queue.hpp) inside a single long-lived task each, so the pool's
// queue sees O(threads) submissions per ATPG run, never O(faults).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace xatpg {

class ThreadPool {
 public:
  /// Spawn `num_threads` workers (0 is clamped to 1).
  explicit ThreadPool(std::size_t num_threads);
  /// Drains the queue, then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task.  Tasks must not throw — wrap bodies that can fail and
  /// stash the std::exception_ptr (see AtpgEngine::run).
  void submit(std::function<void()> task);

  /// Block until the queue is empty and every worker is idle.
  void wait_idle();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_cv_;   // signals workers: task or stop
  std::condition_variable idle_cv_;   // signals wait_idle: all drained
  std::deque<std::function<void()>> tasks_;
  std::size_t active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace xatpg
