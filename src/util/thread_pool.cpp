#include "util/thread_pool.hpp"

namespace xatpg {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    tasks_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  MutexLock lock(mutex_);
  while (!idle()) lock.wait(idle_cv_);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stop_ && tasks_.empty()) lock.wait(work_cv_);
      if (tasks_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++active_;
    }
    task();
    {
      MutexLock lock(mutex_);
      --active_;
      if (idle()) idle_cv_.notify_all();
    }
  }
}

}  // namespace xatpg
