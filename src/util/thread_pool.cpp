#include "util/thread_pool.hpp"

namespace xatpg {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    tasks_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --active_;
      if (tasks_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace xatpg
