// Clang Thread Safety Analysis annotations for xatpg.
//
// The ATPG engine's correctness argument leans on concurrency invariants the
// compiler normally never sees: which fields a mutex guards, which functions
// must (or must not) hold it, and which data is published lock-free under a
// documented protocol.  These macros expose the invariants to Clang's
// -Wthread-safety static analysis (a compile-time capability system over
// locks — see https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) while
// expanding to nothing on compilers without the attribute, so annotated code
// stays portable to gcc.
//
// Build with -DXATPG_THREAD_SAFETY=ON (Clang only) to turn the analysis on
// as -Wthread-safety -Werror; the CI lint job does this on every push.
//
// Conventions:
//  * Data members guarded by a lock get XATPG_GUARDED_BY(mutex_); data
//    reached through a pointer gets XATPG_PT_GUARDED_BY(mutex_).
//  * Functions that must be called with a lock held get XATPG_REQUIRES(m);
//    functions that acquire/release get XATPG_ACQUIRE(m)/XATPG_RELEASE(m).
//  * Lock-free structures (StealingWorkQueue, ShardCounters) have no
//    capability to annotate — their publication protocol is documented at
//    the type and checked dynamically under the TSan CI job instead.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define XATPG_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef XATPG_THREAD_ANNOTATION
#define XATPG_THREAD_ANNOTATION(x)  // compiles away off-Clang
#endif

/// Marks a type as a capability (a lock) the analysis can track.
#define XATPG_CAPABILITY(x) XATPG_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define XATPG_SCOPED_CAPABILITY XATPG_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only with the capability held.
#define XATPG_GUARDED_BY(x) XATPG_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the capability.
#define XATPG_PT_GUARDED_BY(x) XATPG_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function precondition: capability (exclusively) held by the caller.
#define XATPG_REQUIRES(...) \
  XATPG_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function precondition: capability held at least shared.
#define XATPG_REQUIRES_SHARED(...) \
  XATPG_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and does not release it.
#define XATPG_ACQUIRE(...) \
  XATPG_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases a capability the caller holds.
#define XATPG_RELEASE(...) \
  XATPG_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `result`.
#define XATPG_TRY_ACQUIRE(result, ...) \
  XATPG_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// Function must be called WITHOUT the capability held (deadlock guard).
#define XATPG_EXCLUDES(...) \
  XATPG_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Assert (at runtime) that the capability is held; teaches the analysis.
#define XATPG_ASSERT_CAPABILITY(x) \
  XATPG_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the named capability.
#define XATPG_RETURN_CAPABILITY(x) XATPG_THREAD_ANNOTATION(lock_returned(x))

/// Opt a function out of the analysis (use sparingly; justify in a comment).
#define XATPG_NO_THREAD_SAFETY_ANALYSIS \
  XATPG_THREAD_ANNOTATION(no_thread_safety_analysis)
