// Annotated synchronization primitives for xatpg.
//
// std::mutex carries no Clang Thread Safety attributes on libstdc++, so a
// bare `std::mutex` member is invisible to -Wthread-safety: GUARDED_BY
// declarations against it cannot be checked.  Mutex is a zero-overhead
// wrapper that IS a capability, and MutexLock is the scoped acquisition the
// analysis understands (including condition-variable waits, which keep the
// capability held across the internal release/reacquire — exactly the
// contract the waiting code relies on: the predicate is re-evaluated under
// the lock).
//
// Everything inlines to the plain std::mutex / std::unique_lock calls; on
// compilers without the attributes this header costs nothing.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/annotations.hpp"

namespace xatpg {

/// A std::mutex the thread-safety analysis can track as a capability.
class XATPG_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() XATPG_ACQUIRE() { m_.lock(); }
  void unlock() XATPG_RELEASE() { m_.unlock(); }
  bool try_lock() XATPG_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex m_;
};

/// Scoped lock over Mutex (the std::unique_lock of this layer).  Also the
/// only way to wait on a condition variable: from the analysis's point of
/// view the capability stays held across the wait, which matches how callers
/// must treat their guarded state (re-check the predicate, assume nothing
/// about interleavings during the wait).
class XATPG_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) XATPG_ACQUIRE(mu) : lock_(mu.m_) {}
  ~MutexLock() XATPG_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Block on `cv` until notified.  The predicate loop stays the caller's
  /// job (or use the predicate overload below).
  void wait(std::condition_variable& cv) { cv.wait(lock_); }
  template <typename Predicate>
  void wait(std::condition_variable& cv, Predicate pred) {
    cv.wait(lock_, std::move(pred));
  }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace xatpg
