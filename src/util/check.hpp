// Checked-invariant support for xatpg.
//
// XATPG_CHECK is an always-on invariant check (unlike assert, it survives
// NDEBUG builds): EDA data structures are cheap to check and expensive to
// debug when silently corrupted.  Failures throw xatpg::CheckError so tests
// can assert on them and tools can report a clean diagnostic.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace xatpg {

/// Error thrown when an internal invariant or a precondition is violated.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_fail(const char* expr, const char* file,
                                    int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace xatpg

#define XATPG_CHECK(expr)                                              \
  do {                                                                 \
    if (!(expr))                                                       \
      ::xatpg::detail::check_fail(#expr, __FILE__, __LINE__, "");      \
  } while (0)

#define XATPG_CHECK_MSG(expr, msg)                                     \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream xatpg_os_;                                    \
      xatpg_os_ << msg;                                                \
      ::xatpg::detail::check_fail(#expr, __FILE__, __LINE__,           \
                                  xatpg_os_.str());                    \
    }                                                                  \
  } while (0)
