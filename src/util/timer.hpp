// Wall-clock timing used by the benchmark harnesses' CPU columns.
#pragma once

#include <chrono>

namespace xatpg {

/// Monotonic stopwatch; starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace xatpg
