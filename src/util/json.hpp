// Minimal self-contained JSON document model + recursive-descent parser,
// shared by the perf-record reader (src/perf) and the serve protocol
// (src/serve).  No external dependency; malformed input throws CheckError
// with an offset diagnostic, which both consumers translate at their own
// boundary (perf: harness bug; serve: typed ParseError back to the client).
//
// The model keeps object keys in insertion order and does not deduplicate
// them — find() returns the first match, which is what both consumers want
// for forward-compatible "unknown keys are ignored" reading.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace xatpg::json {

struct Value {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  /// First value stored under `key` (objects only); nullptr when absent.
  [[nodiscard]] const Value* find(const std::string& key) const {
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
};

/// Parse one complete JSON document (trailing content is an error).
/// Throws CheckError on malformed input, including nesting deeper than 128
/// levels — untrusted bytes must not be able to blow the parser's stack.
[[nodiscard]] Value parse(const std::string& text);

// --- typed field accessors --------------------------------------------------
// Missing keys return the fallback (or zero); present keys with the wrong
// type throw CheckError.  Shared reading discipline for records and requests.

[[nodiscard]] double num_field(const Value& object, const char* key,
                               double fallback);
[[nodiscard]] std::size_t size_field(const Value& object, const char* key);
[[nodiscard]] std::string string_field(const Value& object, const char* key);
[[nodiscard]] bool bool_field(const Value& object, const char* key,
                              bool fallback);

// --- writing ----------------------------------------------------------------

/// Escape a string for embedding in a JSON double-quoted literal.
[[nodiscard]] std::string escape(const std::string& s);

/// Format a double as a valid JSON number token: non-finite values — which
/// operator<< would emit as the invalid tokens `nan`/`inf` — clamp to 0, and
/// finite values print with max_digits10 precision so parse(number(x)) == x
/// bit-exactly.
[[nodiscard]] std::string number(double value);

}  // namespace xatpg::json
