// Small string helpers shared by the netlist/STG parsers and report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace xatpg {

/// Split on any run of whitespace; no empty tokens are produced.
std::vector<std::string> split_ws(std::string_view text);

/// Split on a single delimiter character; empty fields are kept.
std::vector<std::string> split(std::string_view text, char delim);

/// Strip leading/trailing whitespace.
std::string_view trim(std::string_view text);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Render a fixed-width table cell, left- or right-aligned.
std::string pad_left(const std::string& s, std::size_t width);
std::string pad_right(const std::string& s, std::size_t width);

}  // namespace xatpg
