// Work-stealing scheduler for distributing a fixed batch of work items
// (fault indices) to worker threads.
//
// Modeled on the block granularity of relaxed concurrent FIFOs
// (block_based_queue) crossed with a classic work-stealing deque: the item
// set is frozen up front (ATPG knows its fault list before workers start)
// and pre-split into contiguous blocks, and the blocks are dealt out to
// per-worker deques before any worker runs.  Each worker then
//
//   * takes from the FRONT of its own deque (ascending item order — cheap,
//     cache-friendly, and the common path: one CAS per block, contended
//     only in the final steal race), and
//   * when its own deque is dry, STEALS a whole block from the BACK of a
//     victim's deque (scanning victims round-robin from its own slot), so a
//     worker stuck on a heavy-tailed item — one ATPG "whale" fault can cost
//     10000x the median — donates its untouched blocks instead of
//     stranding them.
//
// Stealing whole blocks keeps thieves off the owner's common path: owner
// and thief only collide on the very last block of a deque.  Each deque is
// one packed 64-bit atomic (head | tail), so the owner/thief race on that
// last block resolves with a single compare-exchange — no two-cursor
// "both sides claim the final block" hazard, no locks, no ABA (cursors move
// monotonically toward each other and blocks are never re-added).
//
// Determinism: the queue only decides WHICH worker runs WHICH block, never
// what the result is.  Per-item results are pure functions of the item (the
// engine's per-fault searches are shard-independent), and the consumer
// commits outcomes in item-list order after the fan-out, so any steal
// interleaving — and any thread count — yields byte-identical results.
//
// Publication protocol: this structure is lock-free, so the mutex-based
// thread-safety annotations from util/annotations.hpp do not apply (see the
// conventions note there); the TSan CI job checks it instead.  The frozen
// `items_`/`blocks_` arrays are published to workers by the thread-creation
// happens-before edge (construction completes before any worker starts, and
// both are immutable afterwards).  The only mutable shared state is the
// packed head|tail cursor per deque — claims race on it with a single CAS,
// and relaxed ordering suffices because a claim transfers INDICES into the
// immutable arrays, never data written after construction.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace xatpg {

template <typename T>
class StealingWorkQueue {
 public:
  /// A claimed block: contiguous items [first, first + count).
  struct Block {
    const T* first = nullptr;
    std::size_t count = 0;
    const T* begin() const { return first; }
    const T* end() const { return first + count; }
  };

  /// Freeze `items`, split them into blocks of `block_size`, and deal the
  /// blocks out to `workers` deques in contiguous runs (worker w is seeded
  /// with the w-th slice of the block list, balanced to within one block).
  StealingWorkQueue(std::vector<T> items, std::size_t block_size,
                    std::size_t workers)
      : items_(std::move(items)), block_size_(block_size) {
    XATPG_CHECK_MSG(block_size_ > 0, "block size must be positive");
    XATPG_CHECK_MSG(workers > 0, "need at least one worker");
    const std::size_t blocks =
        (items_.size() + block_size_ - 1) / block_size_;
    for (std::size_t b = 0; b < blocks; ++b) {
      const std::size_t begin = b * block_size_;
      blocks_.push_back(Block{items_.data() + begin,
                              std::min(block_size_, items_.size() - begin)});
    }
    deques_ = std::vector<Deque>(workers);
    steals_ = std::vector<std::atomic<std::size_t>>(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      // Worker w owns blocks [w*blocks/workers, (w+1)*blocks/workers).
      const auto lo = static_cast<std::uint32_t>(w * blocks / workers);
      const auto hi = static_cast<std::uint32_t>((w + 1) * blocks / workers);
      deques_[w].cursor.store(pack(lo, hi), std::memory_order_relaxed);
      steals_[w].store(0, std::memory_order_relaxed);
    }
  }

  std::size_t size() const { return items_.size(); }
  std::size_t block_size() const { return block_size_; }
  std::size_t num_blocks() const { return blocks_.size(); }
  std::size_t workers() const { return deques_.size(); }

  /// Claim the next block for `worker`: the front of its own deque, or —
  /// once that is dry — the back of the first victim deque (scanned
  /// round-robin from worker+1) that still has one.  nullopt means every
  /// deque is empty, i.e. the batch is fully claimed; deques only ever
  /// shrink, so one clean sweep over all of them is a sound emptiness
  /// proof.  Safe to call concurrently from any number of threads, but each
  /// worker slot should be driven by one thread at a time (the steal
  /// counter is per-slot).
  std::optional<Block> pop_block(std::size_t worker) {
    XATPG_CHECK_MSG(worker < deques_.size(), "worker slot out of range");
    if (const auto own = claim(deques_[worker], /*from_front=*/true))
      return blocks_[*own];
    const std::size_t n = deques_.size();
    for (std::size_t i = 1; i < n; ++i) {
      Deque& victim = deques_[(worker + i) % n];
      if (const auto stolen = claim(victim, /*from_front=*/false)) {
        steals_[worker].fetch_add(1, std::memory_order_relaxed);
        return blocks_[*stolen];
      }
    }
    return std::nullopt;
  }

  /// Blocks `worker` obtained by stealing from another deque (scheduler
  /// telemetry; not part of any deterministic result).
  std::size_t steals(std::size_t worker) const {
    return steals_[worker].load(std::memory_order_relaxed);
  }
  std::size_t total_steals() const {
    std::size_t n = 0;
    for (const auto& s : steals_) n += s.load(std::memory_order_relaxed);
    return n;
  }

 private:
  /// One worker's share of the block list: the unclaimed range
  /// [head, tail), packed into a single atomic word so owner (head side)
  /// and thieves (tail side) cannot both win the last block.
  struct Deque {
    std::atomic<std::uint64_t> cursor{0};
  };

  static std::uint64_t pack(std::uint32_t head, std::uint32_t tail) {
    return (static_cast<std::uint64_t>(head) << 32) | tail;
  }
  static std::uint32_t head_of(std::uint64_t cursor) {
    return static_cast<std::uint32_t>(cursor >> 32);
  }
  static std::uint32_t tail_of(std::uint64_t cursor) {
    return static_cast<std::uint32_t>(cursor);
  }

  /// Claim one block index from `deque`, from the head (owner) or the tail
  /// (thief).  Relaxed ordering is sufficient: the claim only arbitrates
  /// WHO runs the block — the block data itself is immutable and was
  /// published before the worker threads started (thread-creation
  /// happens-before), and per-item results are merged after a join.
  std::optional<std::size_t> claim(Deque& deque, bool from_front) {
    std::uint64_t cursor = deque.cursor.load(std::memory_order_relaxed);
    while (true) {
      const std::uint32_t head = head_of(cursor);
      const std::uint32_t tail = tail_of(cursor);
      if (head >= tail) return std::nullopt;  // empty — and stays empty
      const std::uint64_t next =
          from_front ? pack(head + 1, tail) : pack(head, tail - 1);
      if (deque.cursor.compare_exchange_weak(cursor, next,
                                             std::memory_order_relaxed))
        return from_front ? head : tail - 1;
      // cursor was reloaded by the failed CAS; retry against the new value.
    }
  }

  const std::vector<T> items_;
  const std::size_t block_size_;
  std::vector<Block> blocks_;
  std::vector<Deque> deques_;
  std::vector<std::atomic<std::size_t>> steals_;
};

/// Block size heuristic: enough blocks per worker for load balancing (work
/// per fault varies wildly — redundant faults exhaust their search caps),
/// but coarse enough that cursor traffic is negligible.  Guarantees that
/// whenever `items >= workers` the batch splits into at least `workers`
/// blocks (block size never exceeds items / workers), so no worker is
/// seeded empty-handed on small fault lists.
inline std::size_t work_block_size(std::size_t items, std::size_t workers) {
  if (workers <= 1) return items > 0 ? items : 1;
  const std::size_t target_blocks = 4 * workers;
  const std::size_t fair_share = items / workers;  // ceil(items/size) >= workers
  const std::size_t size =
      std::min(std::max<std::size_t>(items / target_blocks, 1),
               std::max<std::size_t>(fair_share, 1));
  return size;
}

}  // namespace xatpg
