// Chunked MPMC work queue for distributing a fixed batch of work items
// (fault indices) to worker threads.
//
// Modeled on the block-granularity handoff of relaxed concurrent FIFOs
// (block_based_queue): instead of claiming one item at a time through a
// contended head pointer, each consumer claims a whole block of consecutive
// items with a single fetch_add, then works through it privately.  Because
// the item set is fixed before workers start (ATPG knows its fault list up
// front) the queue degenerates to one atomic cursor over an immutable
// vector — wait-free pops, no per-item synchronization, and FIFO order
// within each block.  Relaxation across blocks is harmless here: the
// deterministic merge reorders results by fault-list index afterwards.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace xatpg {

template <typename T>
class ChunkedWorkQueue {
 public:
  /// A claimed block: contiguous items [first, first + count).
  struct Block {
    const T* first = nullptr;
    std::size_t count = 0;
    const T* begin() const { return first; }
    const T* end() const { return first + count; }
  };

  /// Freeze `items` and serve them in blocks of `block_size`.
  ChunkedWorkQueue(std::vector<T> items, std::size_t block_size)
      : items_(std::move(items)), block_size_(block_size) {
    XATPG_CHECK_MSG(block_size_ > 0, "block size must be positive");
  }

  std::size_t size() const { return items_.size(); }
  std::size_t block_size() const { return block_size_; }

  /// Claim the next block; nullopt once the queue is drained.  Safe to call
  /// concurrently from any number of threads.
  std::optional<Block> pop_block() {
    const std::size_t begin =
        next_.fetch_add(block_size_, std::memory_order_relaxed);
    if (begin >= items_.size()) return std::nullopt;
    const std::size_t count = std::min(block_size_, items_.size() - begin);
    return Block{items_.data() + begin, count};
  }

 private:
  const std::vector<T> items_;
  const std::size_t block_size_;
  std::atomic<std::size_t> next_{0};
};

/// Block size heuristic: enough blocks per worker for load balancing (work
/// per fault varies wildly — redundant faults exhaust their search caps),
/// but coarse enough that cursor traffic is negligible.
inline std::size_t work_block_size(std::size_t items, std::size_t workers) {
  if (workers <= 1) return items > 0 ? items : 1;
  const std::size_t target_blocks = 4 * workers;
  const std::size_t size = items / target_blocks;
  return size > 0 ? size : 1;
}

}  // namespace xatpg
