// Implementation of the xatpg::Session facade (xatpg/session.hpp).
//
// This file is the typed-error boundary of the library: every internal
// failure mode (CheckError from the parser/synthesizer/engine, unknown
// benchmark names, degenerate options, invalid fault specs) is translated
// into an xatpg::Error here, so nothing below ever aborts a consumer's
// process.
#include "xatpg/session.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

#include "atpg/engine.hpp"
#include "atpg/fault.hpp"
#include "benchmarks/benchmarks.hpp"
#include "netlist/netlist.hpp"
#include "sim/ternary.hpp"
#include "synth/synth.hpp"
#include "util/check.hpp"

namespace xatpg {

struct Session::Impl {
  Netlist netlist;
  std::vector<bool> reset;
  AtpgOptions options;
  std::unique_ptr<AtpgEngine> engine;
  std::optional<AtpgResult> result;
  /// Reentrancy sentinel for the one-run-at-a-time contract (session.hpp).
  std::atomic<bool> running{false};
};

namespace {

/// Enforces the one-run-at-a-time contract: entering run()/add_faults()
/// while another run is active on the same Session (from another server
/// worker, or reentrantly from an observer callback) is a consumer
/// programming error, so it throws CheckError — deliberately constructed
/// BEFORE the typed-error try block so the violation stays loud instead of
/// being translated into a ResourceError the caller might retry.
class RunGuard {
 public:
  explicit RunGuard(std::atomic<bool>& running) : running_(running) {
    XATPG_CHECK_MSG(
        !running_.exchange(true, std::memory_order_acq_rel),
        "Session::run entered while another run is active on the same "
        "Session — a Session supports one run at a time (use one Session "
        "per job; see xatpg/session.hpp)");
  }
  ~RunGuard() { running_.store(false, std::memory_order_release); }
  RunGuard(const RunGuard&) = delete;
  RunGuard& operator=(const RunGuard&) = delete;

 private:
  std::atomic<bool>& running_;
};

/// Build the engine (CSSG + explicit graph) for an already-loaded circuit,
/// translating internal failures into typed errors.
Expected<void> build_engine(const Netlist& netlist,
                            const std::vector<bool>& reset,
                            const AtpgOptions& options,
                            std::unique_ptr<AtpgEngine>& engine) {
  const Expected<void> valid = options.validate();
  if (!valid) return valid.error();
  try {
    engine = std::make_unique<AtpgEngine>(netlist, reset, options);
  } catch (const CheckError& e) {
    return Error{ErrorCode::ResourceError,
                 std::string("building the CSSG abstraction failed: ") +
                     e.what()};
  } catch (const std::bad_alloc&) {
    return Error{ErrorCode::ResourceError,
                 "out of memory building the CSSG abstraction"};
  }
  return {};
}

Error invalid_fault_error(const Netlist& netlist, const Fault& fault,
                          std::size_t index) {
  std::ostringstream os;
  os << "fault #" << index << " is invalid for circuit '" << netlist.name()
     << "': ";
  if (fault.gate >= netlist.num_signals()) {
    os << "gate id " << fault.gate << " out of range (" << netlist.num_signals()
       << " signals)";
  } else {
    os << "pin " << fault.pin << " out of range for gate '"
       << netlist.signal_name(fault.gate) << "' ("
       << netlist.gate(fault.gate).fanins.size() << " fanins)";
  }
  return Error{ErrorCode::OptionError, os.str()};
}

/// nullopt when every fault names a real site.
std::optional<Error> validate_faults(const Netlist& netlist,
                                     const std::vector<Fault>& faults) {
  for (std::size_t i = 0; i < faults.size(); ++i) {
    const Fault& f = faults[i];
    if (f.gate >= netlist.num_signals())
      return invalid_fault_error(netlist, f, i);
    if (f.site == Fault::Site::GatePin &&
        f.pin >= netlist.gate(f.gate).fanins.size())
      return invalid_fault_error(netlist, f, i);
  }
  return std::nullopt;
}

}  // namespace

Session::Session(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
Session::Session(Session&&) noexcept = default;
Session& Session::operator=(Session&&) noexcept = default;
Session::~Session() = default;

namespace {

/// Shared front of the text factories: parse with `parse` (which throws
/// CheckError on malformed input) and settle the all-false reset state.
Expected<void> parse_and_settle(Netlist (*parse)(const std::string&),
                                const std::string& text, Netlist& netlist,
                                std::vector<bool>& reset) {
  try {
    netlist = parse(text);
  } catch (const CheckError& e) {
    return Error{ErrorCode::ParseError, e.what()};
  } catch (const std::bad_alloc&) {
    return Error{ErrorCode::ResourceError, "out of memory parsing the circuit"};
  }
  reset.assign(netlist.num_signals(), false);
  if (!settle_to_stable(netlist, reset))
    return Error{ErrorCode::ResourceError,
                 "circuit '" + netlist.name() +
                     "' does not settle to a stable state from the all-false "
                     "assignment; no test-mode reset state exists"};
  return {};
}

Expected<std::string> slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    return Error{ErrorCode::ResourceError,
                 "cannot open '" + path + "' for reading"};
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

}  // namespace

Expected<Session> Session::from_xnl(const std::string& text,
                                    const AtpgOptions& options) {
  auto impl = std::make_unique<Impl>();
  impl->options = options;
  if (const auto parsed = parse_and_settle(&parse_xnl_string, text,
                                           impl->netlist, impl->reset);
      !parsed)
    return parsed.error();
  if (const auto built = build_engine(impl->netlist, impl->reset, impl->options, impl->engine); !built)
    return built.error();
  return Session(std::move(impl));
}

Expected<Session> Session::from_xnl_file(const std::string& path,
                                         const AtpgOptions& options) {
  const Expected<std::string> text = slurp(path);
  if (!text) return text.error();
  return from_xnl(text.value(), options);
}

Expected<Session> Session::from_bench(const std::string& text,
                                      const AtpgOptions& options) {
  auto impl = std::make_unique<Impl>();
  impl->options = options;
  if (const auto parsed = parse_and_settle(&parse_bench_string, text,
                                           impl->netlist, impl->reset);
      !parsed)
    return parsed.error();
  if (const auto built = build_engine(impl->netlist, impl->reset, impl->options, impl->engine); !built)
    return built.error();
  return Session(std::move(impl));
}

Expected<Session> Session::from_bench_file(const std::string& path,
                                           const AtpgOptions& options) {
  const Expected<std::string> text = slurp(path);
  if (!text) return text.error();
  return from_bench(text.value(), options);
}

Expected<Session> Session::from_benchmark(const std::string& name,
                                          SynthStyle style,
                                          const AtpgOptions& options) {
  auto impl = std::make_unique<Impl>();
  impl->options = options;
  if (name == "fig1a" || name == "fig1b") {
    impl->netlist = name == "fig1a" ? fig1a_circuit(&impl->reset)
                                    : fig1b_circuit(&impl->reset);
  } else {
    // Distinguish "no such benchmark" (an option error: the caller named
    // something that does not exist) from "the specification does not
    // synthesize" (a synthesis error).
    try {
      benchmark_stg(name);
    } catch (const CheckError& e) {
      return Error{ErrorCode::OptionError, e.what()};
    }
    try {
      SynthResult synth = benchmark_circuit(name, style);
      impl->netlist = std::move(synth.netlist);
      impl->reset = std::move(synth.reset_state);
    } catch (const CheckError& e) {
      return Error{ErrorCode::SynthError, e.what()};
    }
  }
  if (const auto built = build_engine(impl->netlist, impl->reset, impl->options, impl->engine); !built)
    return built.error();
  return Session(std::move(impl));
}

const std::string& Session::circuit_name() const {
  return impl_->netlist.name();
}
std::size_t Session::num_inputs() const {
  return impl_->netlist.inputs().size();
}
std::size_t Session::num_outputs() const {
  return impl_->netlist.outputs().size();
}
std::size_t Session::num_signals() const { return impl_->netlist.num_signals(); }
std::size_t Session::num_pins() const { return impl_->netlist.num_pins(); }
std::string Session::circuit_xnl() const {
  return write_xnl_string(impl_->netlist);
}
const std::vector<bool>& Session::reset_state() const { return impl_->reset; }
const AtpgOptions& Session::options() const { return impl_->options; }

const CssgStats& Session::cssg_stats() const {
  return impl_->engine->cssg().stats();
}
std::string Session::cssg_dot() const { return impl_->engine->cssg().to_dot(); }

std::vector<Fault> Session::input_stuck_faults() const {
  return xatpg::input_stuck_faults(impl_->netlist);
}
std::vector<Fault> Session::output_stuck_faults() const {
  return xatpg::output_stuck_faults(impl_->netlist);
}
std::string Session::describe(const Fault& fault) const {
  if (validate_faults(impl_->netlist, {fault}).has_value())
    return "<invalid fault>";
  return fault.describe(impl_->netlist);
}

Expected<AtpgResult> Session::run(const std::vector<Fault>& faults,
                                  RunObserver* observer,
                                  const CancelToken* cancel) {
  RunGuard guard(impl_->running);
  if (const auto invalid = validate_faults(impl_->netlist, faults))
    return *invalid;
  try {
    impl_->result = impl_->engine->run(faults, observer, cancel);
    return *impl_->result;
  } catch (const CheckError& e) {
    return Error{ErrorCode::ResourceError, e.what()};
  } catch (const std::bad_alloc&) {
    return Error{ErrorCode::ResourceError, "out of memory during the run"};
  }
}

Expected<AtpgResult> Session::add_faults(const std::vector<Fault>& faults,
                                         RunObserver* observer,
                                         const CancelToken* cancel) {
  RunGuard guard(impl_->running);
  if (const auto invalid = validate_faults(impl_->netlist, faults))
    return *invalid;
  try {
    impl_->result = impl_->engine->add_faults(faults, observer, cancel);
    return *impl_->result;
  } catch (const CheckError& e) {
    return Error{ErrorCode::ResourceError, e.what()};
  } catch (const std::bad_alloc&) {
    return Error{ErrorCode::ResourceError, "out of memory during the run"};
  }
}

const std::vector<Fault>& Session::fault_universe() const {
  return impl_->engine->universe();
}
bool Session::has_result() const { return impl_->result.has_value(); }
const AtpgResult& Session::last_result() const { return *impl_->result; }

Expected<std::string> Session::test_program(const AtpgResult& result) const {
  std::ostringstream out;
  try {
    write_test_program(out, impl_->netlist, *impl_->engine, result.sequences);
  } catch (const CheckError& e) {
    return Error{ErrorCode::OptionError,
                 std::string("cannot export test program: ") + e.what()};
  } catch (const std::bad_alloc&) {
    return Error{ErrorCode::ResourceError,
                 "out of memory exporting the test program"};
  }
  return out.str();
}

ShardBddStats Session::bdd_stats() const {
  // The engine's context is a delta view over the frozen shared base: its
  // own counters cover the private delta arena only, so the engine-context
  // stats compose the base in.  The base is immutable after the engine
  // constructor (its counters stopped moving at freeze), so reading it here
  // — main thread, between runs — is race-free.
  BddManager& mgr = impl_->engine->cssg().encoding().mgr();
  const BddManager& base = impl_->engine->base_cssg().encoding().mgr();
  ShardBddStats stats;
  stats.shard = 0;
  stats.base_nodes = base.allocated_nodes();
  stats.delta_peak = mgr.peak_nodes();
  stats.peak_nodes = stats.base_nodes + stats.delta_peak;
  mgr.collect_garbage();
  stats.live_nodes = stats.base_nodes + mgr.allocated_nodes();
  stats.reorders = base.reorder_count() + mgr.reorder_count();
  stats.cache_lookups = base.cache_lookups() + mgr.cache_lookups();
  stats.cache_hits = base.cache_hits() + mgr.cache_hits();
  stats.unique_load = std::max(base.unique_load(), mgr.unique_load());
  return stats;
}

std::vector<ShardBddStats> Session::shard_bdd_stats() const {
  return impl_->engine->shard_bdd_stats();
}

std::size_t Session::sift_now() {
  return impl_->engine->cssg().encoding().sift_now().size_after;
}

}  // namespace xatpg
