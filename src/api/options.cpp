// Boundary validation for the public option block (xatpg/options.hpp).
#include <cmath>
#include <sstream>

#include "xatpg/options.hpp"

namespace xatpg {

Expected<void> AtpgOptions::validate() const {
  std::ostringstream problems;
  const auto reject = [&problems](const char* what) {
    if (problems.tellp() > 0) problems << "; ";
    problems << what;
  };

  if (k == 0)
    reject("k = 0 (every input pattern would be classified as oscillating; "
           "need at least one gate transition per test cycle)");
  if (diff_depth == 0)
    reject("diff_depth = 0 (phase 3 differentiation would be disabled "
           "entirely)");
  if (diff_node_cap == 0)
    reject("diff_node_cap = 0 (the differentiation BFS could never expand a "
           "node)");
  if (random_walk_len == 0)
    reject("random_walk_len = 0 (random TPG would loop applying reset pulses "
           "without ever spending its budget)");
  if (threads > kMaxThreads)
    reject("threads > 4096 (far beyond any machine this targets — almost "
           "certainly a typo; 0 means one worker per hardware thread)");
  if (per_fault_seconds < 0 || std::isnan(per_fault_seconds))
    reject("per_fault_seconds < 0 or NaN (use 0 to disable the wall-clock "
           "fallback, or a positive budget to arm it)");
  if (sim.k == 0)
    reject("sim.k = 0 (the fault simulator could never settle a test cycle)");
  if (sim.candidate_cap == 0)
    reject("sim.candidate_cap = 0 (the consistent-set simulator would give "
           "up on every fault immediately)");

  if (problems.tellp() > 0)
    return Error{ErrorCode::OptionError, problems.str()};
  return {};
}

}  // namespace xatpg
